#pragma once

/// \file hash_table.h
/// The upper level of c-PQ: a lock-free open-addressing hash table with the
/// paper's *modified Robin Hood scheme* (Section III-C2). Entries whose
/// value dropped below the expiry threshold (AT - 1) are overwritten in
/// place regardless of probe order, which caps probe chains as AT rises.
///
/// Entries pack (object id, count) into one 64-bit word so every mutation
/// is a single CAS; a 0 word means empty (ids are stored biased by +1).
///
/// Concurrency note: a Robin Hood displacement is two logical writes (steal
/// the slot, re-insert the evicted entry further along). Between them the
/// evicted key is held privately by the displacing thread, so a concurrent
/// upsert of the same key may insert a second entry. Readers therefore
/// combine duplicate keys with max(count) — ExtractTopK does exactly that —
/// which is safe because counts only grow.

#include <atomic>
#include <cstdint>

#include "common/bit_util.h"
#include "common/logging.h"
#include "index/types.h"

namespace genie {

/// Statistics for the Robin Hood ablation bench (probe behaviour). Updated
/// with atomic increments so one instance can be shared across blocks.
struct HashTableStats {
  uint64_t upserts = 0;
  uint64_t probes = 0;
  uint64_t displacements = 0;
  uint64_t expired_overwrites = 0;
  uint64_t overflows = 0;

  void Add(uint64_t* field, uint64_t v = 1) {
    std::atomic_ref<uint64_t>(*field).fetch_add(v, std::memory_order_relaxed);
  }
};

/// Non-owning view over one query's hash-table slots.
class CpqHashTableView {
 public:
  static constexpr uint64_t kEmpty = 0;

  CpqHashTableView() = default;
  CpqHashTableView(uint64_t* slots, uint32_t capacity)
      : slots_(slots), mask_(capacity - 1) {
    GENIE_DCHECK(bit_util::IsPow2(capacity));
  }

  /// Capacity for one query: the paper sizes the table O(k * max_count);
  /// `slack` adds headroom for concurrent duplicates. Capped so tiny
  /// datasets never allocate more slots than 2n.
  static uint32_t CapacityFor(uint32_t k, uint32_t max_count,
                              uint32_t num_objects, uint32_t slack) {
    uint64_t want = static_cast<uint64_t>(slack) * k *
                        (static_cast<uint64_t>(max_count) + 1) +
                    64;
    uint64_t cap_by_n = bit_util::NextPow2(2ULL * num_objects + 64);
    uint64_t cap = bit_util::NextPow2(want);
    if (cap > cap_by_n) cap = cap_by_n;
    return static_cast<uint32_t>(cap);
  }

  static uint64_t MakeEntry(ObjectId id, uint32_t count) {
    return (static_cast<uint64_t>(count) << 32) |
           (static_cast<uint64_t>(id) + 1);
  }
  static ObjectId EntryId(uint64_t e) {
    return static_cast<ObjectId>((e & 0xFFFFFFFFULL) - 1);
  }
  static uint32_t EntryCount(uint64_t e) {
    return static_cast<uint32_t>(e >> 32);
  }

  uint32_t capacity() const { return mask_ + 1; }

  uint64_t LoadSlot(uint32_t i) const {
    return std::atomic_ref<const uint64_t>(slots_[i])
        .load(std::memory_order_relaxed);
  }

  /// Inserts or raises (id, count). `expire_below` is AT - 1: resident
  /// entries with a smaller count can never be top-k (Theorem 3.1) and are
  /// overwritten in place when `allow_expired_overwrite` is set (the paper's
  /// modification; the ablation bench turns it off).
  ///
  /// Returns false only if the probe limit was exceeded (table overflow),
  /// which the engine reports as an error; with CapacityFor sizing this does
  /// not happen in practice.
  bool Upsert(ObjectId id, uint32_t count, uint32_t expire_below,
              bool allow_expired_overwrite = true,
              HashTableStats* stats = nullptr) {
    uint64_t carry = MakeEntry(id, count);
    uint32_t carry_age = 0;
    uint32_t slot = Hash(EntryId(carry)) & mask_;
    if (stats != nullptr) stats->Add(&stats->upserts);
    for (uint32_t probes = 0; probes <= mask_; ++probes) {
      if (stats != nullptr) stats->Add(&stats->probes);
      std::atomic_ref<uint64_t> ref(slots_[slot]);
      uint64_t cur = ref.load(std::memory_order_relaxed);
      while (true) {
        if (cur == kEmpty) {
          if (ref.compare_exchange_weak(cur, carry,
                                        std::memory_order_relaxed)) {
            return true;
          }
          continue;  // cur reloaded; re-evaluate this slot
        }
        if (EntryId(cur) == EntryId(carry)) {
          if (EntryCount(cur) >= EntryCount(carry)) return true;
          if (ref.compare_exchange_weak(cur, carry,
                                        std::memory_order_relaxed)) {
            return true;
          }
          continue;
        }
        if (allow_expired_overwrite && EntryCount(cur) < expire_below) {
          // Expired entry: overwrite regardless of hashing conflict.
          if (ref.compare_exchange_weak(cur, carry,
                                        std::memory_order_relaxed)) {
            if (stats != nullptr) stats->Add(&stats->expired_overwrites);
            return true;
          }
          continue;
        }
        const uint32_t cur_age = ProbeDistance(EntryId(cur), slot);
        if (cur_age < carry_age) {
          // Robin Hood: the resident is richer; steal the slot and carry
          // the evicted entry onward.
          if (ref.compare_exchange_weak(cur, carry,
                                        std::memory_order_relaxed)) {
            if (stats != nullptr) stats->Add(&stats->displacements);
            carry = cur;
            carry_age = cur_age;
            break;  // advance to next slot with the evicted entry
          }
          continue;
        }
        break;  // keep probing
      }
      slot = (slot + 1) & mask_;
      ++carry_age;
    }
    if (stats != nullptr) stats->Add(&stats->overflows);
    return false;
  }

  /// Single-writer Upsert: identical placement decisions and result, plain
  /// loads/stores instead of CAS retry loops. Legal only while the calling
  /// thread is this table's sole writer (the engine's unsplit schedule);
  /// `stats` stays safe to share — it is updated atomically either way.
  bool UpsertExclusive(ObjectId id, uint32_t count, uint32_t expire_below,
                       bool allow_expired_overwrite = true,
                       HashTableStats* stats = nullptr) {
    uint64_t carry = MakeEntry(id, count);
    uint32_t carry_age = 0;
    uint32_t slot = Hash(EntryId(carry)) & mask_;
    if (stats != nullptr) stats->Add(&stats->upserts);
    for (uint32_t probes = 0; probes <= mask_; ++probes) {
      if (stats != nullptr) stats->Add(&stats->probes);
      const uint64_t cur = slots_[slot];
      if (cur == kEmpty) {
        slots_[slot] = carry;
        return true;
      }
      if (EntryId(cur) == EntryId(carry)) {
        if (EntryCount(cur) < EntryCount(carry)) slots_[slot] = carry;
        return true;
      }
      if (allow_expired_overwrite && EntryCount(cur) < expire_below) {
        slots_[slot] = carry;
        if (stats != nullptr) stats->Add(&stats->expired_overwrites);
        return true;
      }
      const uint32_t cur_age = ProbeDistance(EntryId(cur), slot);
      if (cur_age < carry_age) {
        slots_[slot] = carry;
        if (stats != nullptr) stats->Add(&stats->displacements);
        carry = cur;
        carry_age = cur_age;
      }
      slot = (slot + 1) & mask_;
      ++carry_age;
    }
    if (stats != nullptr) stats->Add(&stats->overflows);
    return false;
  }

  /// Prefetch the home slot of `id` into cache with write intent. The
  /// per-query table is far larger than L1 and touched in hash order, so
  /// an Upsert's first probe is usually a cold miss; issuing this a fixed
  /// distance ahead of the gate pass hides that latency (Robin Hood keeps
  /// probe runs short, so the home line covers almost every probe).
  void PrefetchSlot(ObjectId id) const {
    __builtin_prefetch(&slots_[Hash(id) & mask_], 1, 3);
  }

  /// Probe distance ("age") of a key if it were resident at `slot`.
  uint32_t ProbeDistance(ObjectId id, uint32_t slot) const {
    return (slot - (Hash(id) & mask_)) & mask_;
  }

  static uint32_t Hash(ObjectId id) {
    return static_cast<uint32_t>(bit_util::Mix64(id));
  }

 private:
  uint64_t* slots_ = nullptr;
  uint32_t mask_ = 0;
};

}  // namespace genie
