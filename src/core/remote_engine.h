#pragma once

/// \file remote_engine.h
/// The fourth tier of the execution ladder: scatter-gather over worker
/// processes that each own one shard of the index (ROADMAP "multi-node").
/// The coordinator scatters a batch to every shard in parallel, gathers the
/// per-shard candidate pools (already lifted to global object ids by the
/// workers) and merges them with MergeCandidatePools — the same host-side
/// merge as the multi-device tier, so remote answers are bit-identical to
/// local ones up to the documented boundary-tie freedom.
///
/// Fault tolerance: each shard has an ordered replica list. Attempt 0 goes
/// to the primary; when an attempt errors, or stays silent for
/// hedge_delay_s, the next replica is hedged in parallel. The first OK
/// response wins and stale responses are discarded, so every query gets
/// exactly one result no matter how many attempts were in flight. A shard
/// whose every replica failed fails the batch with the last error.
///
/// Threading: scatter launches one thread per attempt. ExecuteBatch returns
/// as soon as every shard has a winner (or a final failure); straggler
/// attempts (a slow replica whose hedge already won) keep running in the
/// background and are joined by the destructor, which also waits out any
/// ExecuteBatch still in flight on other threads.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/match_engine.h"
#include "core/multi_load_engine.h"
#include "core/query.h"
#include "net/remote_options.h"

namespace genie {

namespace net {
class Transport;
class WorkerService;
}  // namespace net

/// Per-address transport accounting, surfaced through SearchProfile so
/// callers can see which worker was slow, hedged or dead.
struct RemoteWorkerStats {
  std::string address;
  uint64_t calls = 0;     // match attempts shipped to this address
  uint64_t wins = 0;      // attempts whose response was the shard winner
  uint64_t failures = 0;  // attempts that errored (transport or decode)
  uint64_t hedged = 0;    // attempts launched as a hedge (index > 0)
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
  double call_s = 0;           // wall seconds inside transport calls
  double worker_match_s = 0;   // worker-reported stage seconds
  double worker_select_s = 0;
  double worker_execute_s = 0;
};

struct RemoteProfile {
  uint64_t batches = 0;
  double scatter_s = 0;  // wall seconds from scatter to last shard winner
  double merge_s = 0;    // host-side pool merge
  std::vector<RemoteWorkerStats> workers;
};

class RemoteEngine {
 public:
  /// Calls Create performs on every address before any match traffic:
  /// Hello (call 0) and LoadShard (call 1). Fault-matrix tests arm match
  /// faults starting at this index.
  static constexpr uint64_t kCallsDuringCreate = 2;

  /// Shards the parts out to the workers named by `remote.endpoints` (one
  /// endpoint per part, same order; replica addresses receive the same
  /// shard). Loopback addresses spin up in-process workers; host:port
  /// addresses must already have a genie_worker listening. The parts'
  /// indexes may be destroyed after Create returns — workers own
  /// deserialized copies.
  static Result<std::unique_ptr<RemoteEngine>> Create(
      std::span<const IndexPart> parts, const MatchEngineOptions& options,
      const net::RemoteOptions& remote);

  ~RemoteEngine();
  RemoteEngine(const RemoteEngine&) = delete;
  RemoteEngine& operator=(const RemoteEngine&) = delete;

  /// Scatters one batch to all shards, gathers and merges. Thread-safe.
  Result<std::vector<QueryResult>> ExecuteBatch(std::span<const Query> queries);

  /// Updates the match options future batches are executed with (workers
  /// rebuild their engines lazily when the wire options change). Used for
  /// k growth without re-pushing shards.
  void UpdateOptions(const MatchEngineOptions& options);

  RemoteProfile profile() const;
  void ResetProfile();

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const MatchEngineOptions& options() const { return options_; }

 private:
  struct ShardState;    // per-shard hedging state for one batch
  struct ShardClient;   // transports + replica order for one shard

  RemoteEngine(MatchEngineOptions options, net::RemoteOptions remote);

  /// Runs one shard's replica ladder for one batch (called on the shard's
  /// scatter thread): launches attempts, hedges on error/delay, fills
  /// state->winner or state->error.
  void RunShard(ShardClient& shard, const std::string& request_frame,
                uint64_t request_id, size_t num_queries,
                std::shared_ptr<ShardState> state);

  void LaunchAttempt(ShardClient& shard, size_t replica,
                     const std::string& request_frame, uint64_t request_id,
                     size_t num_queries, std::shared_ptr<ShardState> state);

  void ReapFinishedThreads();
  RemoteWorkerStats& StatsForLocked(const std::string& address);

  MatchEngineOptions options_;
  net::RemoteOptions remote_;
  std::vector<std::unique_ptr<ShardClient>> shards_;
  /// Keeps in-process workers alive (loopback endpoints only).
  std::vector<std::shared_ptr<net::WorkerService>> services_;

  std::atomic<uint64_t> next_request_id_{1};

  mutable std::mutex profile_mu_;
  RemoteProfile profile_;

  std::mutex threads_mu_;
  std::condition_variable threads_cv_;
  struct TrackedThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::vector<TrackedThread> pending_threads_;
  uint64_t outstanding_batches_ = 0;
  bool shutting_down_ = false;
};

}  // namespace genie
