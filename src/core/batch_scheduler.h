#pragma once

/// \file batch_scheduler.h
/// Large query sets: the paper processes 65536 queries as 64 batches of
/// 1024 (Fig. 11, "GENIE can also support such large number of queries
/// with breaking query set into several small batches"). ExecuteLargeBatch
/// packages that strategy on top of EngineBackend: it chunks the query set
/// so each batch's device footprint stays inside the budget, runs every
/// chunk through the backend (composing with the automatic single-load ->
/// multiple-loading escalation), and concatenates the results. Streaming
/// consumers (per-chunk delivery, cancellation) live one level up, in
/// genie::Engine::SearchStream / SearchAsync, which apply the same chunking
/// strategy across every modality.

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/engine_backend.h"
#include "core/query.h"

namespace genie {

struct LargeBatchOptions {
  /// Queries per device batch (the paper's 1024). 0 = derive from the
  /// device memory budget below.
  uint32_t batch_size = 1024;
  /// When batch_size is 0: the largest batch whose per-query device memory
  /// (MatchEngine::DeviceBytesPerQuery) fits in this fraction of the free
  /// device capacity.
  double memory_fraction = 0.5;
};

/// Batch-size derivation from the device memory budget, as a pure function
/// so the oversubscription edge cases are unit-testable. Free memory is
/// clamped to zero when `allocated_bytes` exceeds `capacity_bytes` (an
/// oversubscribed device must not underflow into a huge batch), and the
/// result never drops below one query per batch.
uint32_t DeriveLargeBatchSize(uint64_t capacity_bytes, uint64_t allocated_bytes,
                              uint64_t per_query_bytes, double memory_fraction);

/// Runs `queries` through `backend` in batches. Results are in input order,
/// exactly as a single ExecuteBatch of everything would return them. An
/// empty query set is rejected with InvalidArgument, matching the
/// MatchEngine / MultiLoadEngine / EngineBackend batch contract.
Result<std::vector<QueryResult>> ExecuteLargeBatch(
    EngineBackend* backend, std::span<const Query> queries,
    const LargeBatchOptions& options = {});

}  // namespace genie
