#pragma once

/// \file batch_scheduler.h
/// Large query sets: the paper processes 65536 queries as 64 batches of
/// 1024 (Fig. 11, "GENIE can also support such large number of queries
/// with breaking query set into several small batches"). ExecuteLargeBatch
/// packages that strategy: it chunks the query set so each batch's device
/// footprint stays inside the budget and concatenates the results.

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/match_engine.h"
#include "core/query.h"

namespace genie {

struct LargeBatchOptions {
  /// Queries per device batch (the paper's 1024). 0 = derive from the
  /// device memory budget below.
  uint32_t batch_size = 1024;
  /// When batch_size is 0: the largest batch whose per-query device memory
  /// (MatchEngine::DeviceBytesPerQuery) fits in this fraction of the free
  /// device capacity.
  double memory_fraction = 0.5;
};

/// Runs `queries` through `engine` in batches. Results are in input order,
/// exactly as a single ExecuteBatch of everything would return them.
Result<std::vector<QueryResult>> ExecuteLargeBatch(
    MatchEngine* engine, std::span<const Query> queries,
    const LargeBatchOptions& options = {});

}  // namespace genie
