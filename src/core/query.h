#pragma once

/// \file query.h
/// The match-count model's query representation (Definition 2.1): a query
/// is a set of items; each item matches a set of keywords. The score of an
/// object is the total number of its postings covered by the query's items.

#include <cstdint>
#include <span>
#include <vector>

#include "index/types.h"

namespace genie {

/// A compiled query. Domain layers (relational ranges, LSH signatures,
/// n-grams, document words) lower themselves into this form.
class Query {
 public:
  Query() { item_offsets_.push_back(0); }

  /// Appends one item matching the given keywords.
  void AddItem(std::span<const Keyword> keywords);
  void AddItem(std::initializer_list<Keyword> keywords) {
    AddItem(std::span<const Keyword>(keywords.begin(), keywords.size()));
  }
  /// Appends a single-keyword item (the common case for LSH / SA data).
  void AddItem(Keyword keyword) { AddItem({&keyword, 1}); }

  uint32_t num_items() const {
    return static_cast<uint32_t>(item_offsets_.size() - 1);
  }
  std::span<const Keyword> item(uint32_t i) const {
    return std::span<const Keyword>(keywords_)
        .subspan(item_offsets_[i], item_offsets_[i + 1] - item_offsets_[i]);
  }
  size_t total_keywords() const { return keywords_.size(); }

 private:
  std::vector<Keyword> keywords_;
  std::vector<uint32_t> item_offsets_;
};

/// One ranked hit of a top-k result.
struct TopKEntry {
  ObjectId id = kInvalidObjectId;
  uint32_t count = 0;

  bool operator==(const TopKEntry&) const = default;
};

/// Result of one query: up to k entries, sorted by descending match count
/// (ties in unspecified order, as the paper breaks ties randomly).
struct QueryResult {
  std::vector<TopKEntry> entries;
  /// The match count of the k-th object, MC_k. For the c-PQ engine this is
  /// AT - 1 (Theorem 3.1); 0 when fewer than k objects matched.
  uint32_t threshold = 0;
};

}  // namespace genie
