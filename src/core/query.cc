#include "core/query.h"

namespace genie {

void Query::AddItem(std::span<const Keyword> keywords) {
  keywords_.insert(keywords_.end(), keywords.begin(), keywords.end());
  item_offsets_.push_back(static_cast<uint32_t>(keywords_.size()));
}

}  // namespace genie
