#pragma once

/// \file cost_model.h
/// The "how fast is this machine" half of the query planner: per-stage cost
/// rates (seconds per posting scanned, per query selected, per byte moved)
/// seeded with priors and calibrated online from the measured MatchProfile
/// deltas the backend already collects. ResourceExhausted escalations feed
/// back as a shrinking residency margin, so a machine whose memory estimates
/// proved optimistic plans more conservatively from then on — the
/// try-and-escalate path becomes training data instead of the decision
/// maker.

#include <cstdint>
#include <string>

#include "core/match_engine.h"

namespace genie {
namespace plan {

/// Calibrated seconds-per-unit-of-work rates. Exposed as a plain struct so
/// tests and ExplainPlan can read the model state.
struct StageCostRates {
  double match_s_per_posting = 0;
  double select_s_per_query = 0;
  double transfer_s_per_byte = 0;
  double prepare_s_per_query = 0;
  double merge_s_per_query_part = 0;
};

/// Not internally synchronized: EngineBackend owns one and serializes all
/// observation/estimation under its own mutex.
class CostModel {
 public:
  CostModel();

  /// Folds one executed batch's measured stage costs into the rates
  /// (exponentially weighted, so drifting load conditions re-calibrate).
  /// `postings_scanned` is the match work volume behind `delta.match_s`.
  void ObserveExecution(const MatchProfile& delta, uint64_t postings_scanned,
                        uint32_t num_queries);

  /// Folds one host-merge observation (multi-part tiers).
  void ObserveMerge(double merge_s, uint32_t num_queries, uint32_t parts);

  /// A memory-estimate miss (ResourceExhausted where the plan said "fits"):
  /// shrinks the residency margin multiplicatively, so the next plan
  /// assumes proportionally less usable memory.
  void RecordEscalation();

  /// Fraction of device memory the planner may assume usable (1.0 until
  /// the first escalation, floored so the model never plans with zero).
  double residency_margin() const { return residency_margin_; }
  uint32_t escalations() const { return escalations_; }
  /// Executed batches folded in so far (0 = rates are still the priors).
  uint64_t observations() const { return observations_; }

  const StageCostRates& rates() const { return rates_; }

  /// Predicted execute-stage seconds of a batch: match over
  /// `postings_scanned` plus selection of `num_queries` queries.
  double EstimateExecuteSeconds(uint64_t postings_scanned,
                                uint32_t num_queries) const;
  /// Predicted prepare-stage seconds (the pipeline's overlappable half).
  double EstimatePrepareSeconds(uint32_t num_queries) const;

  std::string DebugString() const;

 private:
  StageCostRates rates_;
  double residency_margin_ = 1.0;
  uint32_t escalations_ = 0;
  uint64_t observations_ = 0;
};

}  // namespace plan
}  // namespace genie
