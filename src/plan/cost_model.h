#pragma once

/// \file cost_model.h
/// The "how fast is this machine" half of the query planner: per-stage cost
/// rates (seconds per posting scanned, per query selected, per byte moved)
/// seeded with priors and calibrated online from the measured MatchProfile
/// deltas the backend already collects. ResourceExhausted escalations feed
/// back as a shrinking residency margin, so a machine whose memory estimates
/// proved optimistic plans more conservatively from then on — the
/// try-and-escalate path becomes training data instead of the decision
/// maker.

#include <cstdint>
#include <string>

#include "core/match_engine.h"

namespace genie {
namespace plan {

/// Calibrated seconds-per-unit-of-work rates. Exposed as a plain struct so
/// tests and ExplainPlan can read the model state.
struct StageCostRates {
  double match_s_per_posting = 0;
  double select_s_per_query = 0;
  double transfer_s_per_byte = 0;
  double prepare_s_per_query = 0;
  double merge_s_per_query_part = 0;
};

/// Not internally synchronized: EngineBackend owns one and serializes all
/// observation/estimation under its own mutex.
class CostModel {
 public:
  CostModel();

  /// Folds one executed batch's measured stage costs into the rates
  /// (exponentially weighted, so drifting load conditions re-calibrate).
  /// `postings_scanned` is the match work volume behind `delta.match_s`;
  /// `selector` is the select stage the batch actually ran, so the model
  /// keeps one select rate per selector alongside the blended aggregate.
  void ObserveExecution(const MatchProfile& delta, uint64_t postings_scanned,
                        uint32_t num_queries,
                        MatchEngineOptions::Selector selector =
                            MatchEngineOptions::Selector::kCpq);

  /// Folds one host-merge observation (multi-part tiers).
  void ObserveMerge(double merge_s, uint32_t num_queries, uint32_t parts);

  /// A memory-estimate miss (ResourceExhausted where the plan said "fits"):
  /// shrinks the residency margin multiplicatively, so the next plan
  /// assumes proportionally less usable memory.
  void RecordEscalation();

  /// A c-PQ hash-table overflow (Theorem 3.1's capacity bound violated by
  /// the workload): distinct from a memory-estimate miss — it does not
  /// shrink the residency margin, it tells the planner the configured
  /// selector's select stage is unsafe on this workload.
  void RecordCpqOverflow() { ++cpq_overflows_; }
  uint32_t cpq_overflows() const { return cpq_overflows_; }

  /// Observed select-stage seconds per query for one selector; 0 until a
  /// batch has run under it.
  double SelectRate(MatchEngineOptions::Selector selector) const;

  /// The selector the planner should schedule given the caller's configured
  /// base selector. Explicit non-default configurations (kCountTableSpq,
  /// kBucketSelect) are honored as-is; a kCpq configuration is promoted to
  /// kBucketSelect once an overflow has been recorded (bucket selection has
  /// no hash table to overflow) or once both selectors have observed rates
  /// and bucket selection is decisively cheaper.
  MatchEngineOptions::Selector PreferredSelector(
      MatchEngineOptions::Selector configured) const;

  /// Fraction of device memory the planner may assume usable (1.0 until
  /// the first escalation, floored so the model never plans with zero).
  double residency_margin() const { return residency_margin_; }
  uint32_t escalations() const { return escalations_; }
  /// Executed batches folded in so far (0 = rates are still the priors).
  uint64_t observations() const { return observations_; }

  const StageCostRates& rates() const { return rates_; }

  /// Predicted execute-stage seconds of a batch: match over
  /// `postings_scanned` plus selection of `num_queries` queries.
  double EstimateExecuteSeconds(uint64_t postings_scanned,
                                uint32_t num_queries) const;
  /// Predicted prepare-stage seconds (the pipeline's overlappable half).
  double EstimatePrepareSeconds(uint32_t num_queries) const;

  std::string DebugString() const;

 private:
  StageCostRates rates_;
  /// Observed select s/query indexed by MatchEngineOptions::Selector.
  double select_rate_of_selector_[3] = {0, 0, 0};
  double residency_margin_ = 1.0;
  uint32_t escalations_ = 0;
  uint32_t cpq_overflows_ = 0;
  uint64_t observations_ = 0;
};

}  // namespace plan
}  // namespace genie
