#include "plan/index_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace genie {
namespace plan {

namespace {

/// Stats blob layout version (bumping it invalidates persisted stats, which
/// Open then recomputes — never a correctness problem).
constexpr uint8_t kStatsBlobVersion = 1;

}  // namespace

uint64_t IndexStats::PrefixVolume(ObjectId end) const {
  if (bucket_width == 0 || bucket_postings.empty() || end == 0) return 0;
  if (end >= num_objects) return total_postings;
  const uint32_t full = end / bucket_width;
  uint64_t volume = 0;
  for (uint32_t b = 0; b < full && b < bucket_postings.size(); ++b) {
    volume += bucket_postings[b];
  }
  const uint32_t rem = end % bucket_width;
  if (rem != 0 && full < bucket_postings.size()) {
    // Ids inside a bucket are indistinguishable at this granularity;
    // apportion its volume linearly.
    const uint32_t bucket_begin = full * bucket_width;
    const uint32_t bucket_ids =
        std::min(bucket_width, num_objects - bucket_begin);
    volume += bucket_postings[full] * rem / std::max(1u, bucket_ids);
  }
  return volume;
}

double IndexStats::VolumeSkew() const {
  if (bucket_postings.empty() || total_postings == 0) return 1.0;
  const uint64_t max_bucket =
      *std::max_element(bucket_postings.begin(), bucket_postings.end());
  const double mean = static_cast<double>(total_postings) /
                      static_cast<double>(bucket_postings.size());
  return mean > 0 ? static_cast<double>(max_bucket) / mean : 1.0;
}

bool IndexStats::MatchesIndex(const InvertedIndex& index) const {
  return num_objects == index.num_objects() &&
         vocab_size == index.vocab_size() &&
         num_lists == index.num_lists() &&
         max_list_length == index.max_list_length() &&
         total_postings == index.postings().size();
}

std::string IndexStats::DebugString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "objects=%u vocab=%u lists=%u postings=%llu fanout=%.2f "
                "buckets=%zu(width %u) skew=%.2f payload=%lluB/obj",
                num_objects, vocab_size, num_lists,
                static_cast<unsigned long long>(total_postings),
                keyword_fanout, bucket_postings.size(), bucket_width,
                VolumeSkew(),
                static_cast<unsigned long long>(
                    rerank_payload_bytes_per_object));
  return buffer;
}

IndexStats ComputeIndexStats(const InvertedIndex& index,
                             uint64_t rerank_payload_bytes_per_object,
                             uint32_t max_buckets) {
  IndexStats stats;
  stats.num_objects = index.num_objects();
  stats.vocab_size = index.vocab_size();
  stats.num_lists = index.num_lists();
  stats.max_list_length = index.max_list_length();
  stats.total_postings = index.postings().size();
  stats.rerank_payload_bytes_per_object = rerank_payload_bytes_per_object;

  max_buckets = std::max(1u, max_buckets);
  stats.bucket_width =
      std::max(1u, (index.num_objects() + max_buckets - 1) / max_buckets);
  const uint32_t buckets =
      index.num_objects() == 0
          ? 0
          : (index.num_objects() + stats.bucket_width - 1) /
                stats.bucket_width;
  stats.bucket_postings.assign(buckets, 0);
  for (const ObjectId oid : index.postings()) {
    const uint32_t b = oid / stats.bucket_width;
    if (b < buckets) ++stats.bucket_postings[b];
  }

  uint64_t sublists = 0;
  for (Keyword kw = 0; kw < index.vocab_size(); ++kw) {
    const auto [first, count] = index.KeywordLists(kw);
    (void)first;
    if (count == 0) continue;
    ++stats.nonempty_keywords;
    sublists += count;
  }
  stats.keyword_fanout =
      stats.nonempty_keywords > 0
          ? static_cast<double>(sublists) / stats.nonempty_keywords
          : 0;
  return stats;
}

std::vector<ObjectId> BalancedBoundaries(const IndexStats& stats,
                                         uint32_t parts) {
  const uint32_t n = stats.num_objects;
  parts = std::max(1u, std::min(parts, std::max(1u, n)));
  std::vector<ObjectId> boundaries;
  boundaries.reserve(parts + 1);
  boundaries.push_back(0);
  if (n == 0) {
    boundaries.push_back(0);
    return boundaries;
  }
  // Walk the histogram once, cutting where the prefix volume crosses each
  // p/parts share of the total. Cuts land on bucket edges (id-exact when
  // bucket_width == 1); empty ranges are forced non-empty so every part
  // holds at least one object — the ShardedIndex contract.
  uint64_t prefix = 0;
  uint32_t bucket = 0;
  const uint64_t total = std::max<uint64_t>(1, stats.total_postings);
  for (uint32_t p = 1; p < parts; ++p) {
    const uint64_t target = total * p / parts;
    while (bucket < stats.bucket_postings.size() &&
           prefix + stats.bucket_postings[bucket] <= target) {
      prefix += stats.bucket_postings[bucket];
      ++bucket;
    }
    ObjectId cut = std::min<uint64_t>(
        static_cast<uint64_t>(bucket) * stats.bucket_width, n);
    // Keep boundaries strictly increasing and leave room for the remaining
    // parts (each at least one id wide).
    cut = std::max<ObjectId>(cut, boundaries.back() + 1);
    cut = std::min<ObjectId>(cut, n - (parts - p));
    boundaries.push_back(cut);
  }
  boundaries.push_back(n);
  return boundaries;
}

void SerializeIndexStats(const IndexStats& stats, serialize::Writer* writer) {
  writer->U8(kStatsBlobVersion);
  writer->U32(stats.num_objects);
  writer->U32(stats.vocab_size);
  writer->U32(stats.num_lists);
  writer->U32(stats.max_list_length);
  writer->U64(stats.total_postings);
  writer->U32(stats.nonempty_keywords);
  writer->F64(stats.keyword_fanout);
  writer->U32(stats.bucket_width);
  writer->Vec(stats.bucket_postings);
  writer->U64(stats.rerank_payload_bytes_per_object);
}

Status DeserializeIndexStats(serialize::Reader* reader, IndexStats* stats) {
  uint8_t version = 0;
  GENIE_RETURN_NOT_OK(reader->U8(&version));
  if (version != kStatsBlobVersion) {
    return Status::InvalidArgument("unsupported index-stats blob version");
  }
  GENIE_RETURN_NOT_OK(reader->U32(&stats->num_objects));
  GENIE_RETURN_NOT_OK(reader->U32(&stats->vocab_size));
  GENIE_RETURN_NOT_OK(reader->U32(&stats->num_lists));
  GENIE_RETURN_NOT_OK(reader->U32(&stats->max_list_length));
  GENIE_RETURN_NOT_OK(reader->U64(&stats->total_postings));
  GENIE_RETURN_NOT_OK(reader->U32(&stats->nonempty_keywords));
  GENIE_RETURN_NOT_OK(reader->F64(&stats->keyword_fanout));
  GENIE_RETURN_NOT_OK(reader->U32(&stats->bucket_width));
  GENIE_RETURN_NOT_OK(reader->Vec(&stats->bucket_postings));
  GENIE_RETURN_NOT_OK(reader->U64(&stats->rerank_payload_bytes_per_object));
  if (stats->bucket_width == 0) {
    return Status::InvalidArgument("index-stats bucket width must be >= 1");
  }
  uint64_t histogram_total = 0;
  for (const uint64_t v : stats->bucket_postings) histogram_total += v;
  if (histogram_total != stats->total_postings) {
    return Status::InvalidArgument(
        "index-stats histogram does not sum to the postings total");
  }
  return Status::OK();
}

}  // namespace plan
}  // namespace genie
