#include "plan/cost_model.h"

#include <algorithm>
#include <cstdio>

namespace genie {
namespace plan {

namespace {

/// Weight of the newest observation in the exponentially weighted update.
/// 0.25 converges within a handful of batches without letting one outlier
/// batch (a cold cache, a scheduler hiccup) dominate the model.
constexpr double kObservationWeight = 0.25;

/// Margin shrink per ResourceExhausted escalation and its floor. Two
/// misses halve the assumed-usable memory; the floor keeps a pathological
/// device from driving planned parts to the max_parts cap forever.
constexpr double kEscalationShrink = 0.75;
constexpr double kMarginFloor = 0.25;

/// An observed selector only displaces the configured one when it is
/// decisively cheaper — a 20% margin keeps the planner from flapping
/// between selectors on measurement noise.
constexpr double kSelectorSwitchRatio = 0.8;

double Blend(double current, double observed) {
  if (observed <= 0) return current;
  if (current <= 0) return observed;
  return current * (1 - kObservationWeight) + observed * kObservationWeight;
}

}  // namespace

CostModel::CostModel() {
  // Priors in the simulator's ballpark (a few ns per posting scanned, ~µs
  // per query elsewhere). Only the ratios matter before calibration — the
  // first observed batches overwrite the scale.
  rates_.match_s_per_posting = 5e-9;
  rates_.select_s_per_query = 2e-6;
  rates_.transfer_s_per_byte = 1e-10;
  rates_.prepare_s_per_query = 1e-6;
  rates_.merge_s_per_query_part = 1e-6;
}

void CostModel::ObserveExecution(const MatchProfile& delta,
                                 uint64_t postings_scanned,
                                 uint32_t num_queries,
                                 MatchEngineOptions::Selector selector) {
  if (num_queries == 0) return;
  if (postings_scanned > 0 && delta.match_s > 0) {
    rates_.match_s_per_posting = Blend(
        rates_.match_s_per_posting,
        delta.match_s / static_cast<double>(postings_scanned));
  }
  if (delta.select_s > 0) {
    rates_.select_s_per_query =
        Blend(rates_.select_s_per_query, delta.select_s / num_queries);
    double& selector_rate =
        select_rate_of_selector_[static_cast<int>(selector)];
    selector_rate = Blend(selector_rate, delta.select_s / num_queries);
  }
  if (delta.prepare_s > 0) {
    rates_.prepare_s_per_query =
        Blend(rates_.prepare_s_per_query, delta.prepare_s / num_queries);
  }
  const uint64_t moved = delta.index_bytes + delta.query_bytes;
  const double transfer_s = delta.index_transfer_s +
                            (delta.query_transfer_s - delta.prepare_s);
  if (moved > 0 && transfer_s > 0) {
    rates_.transfer_s_per_byte =
        Blend(rates_.transfer_s_per_byte,
              transfer_s / static_cast<double>(moved));
  }
  ++observations_;
}

void CostModel::ObserveMerge(double merge_s, uint32_t num_queries,
                             uint32_t parts) {
  const uint64_t query_parts = static_cast<uint64_t>(num_queries) * parts;
  if (merge_s <= 0 || query_parts == 0) return;
  rates_.merge_s_per_query_part =
      Blend(rates_.merge_s_per_query_part,
            merge_s / static_cast<double>(query_parts));
}

double CostModel::SelectRate(MatchEngineOptions::Selector selector) const {
  return select_rate_of_selector_[static_cast<int>(selector)];
}

MatchEngineOptions::Selector CostModel::PreferredSelector(
    MatchEngineOptions::Selector configured) const {
  if (configured != MatchEngineOptions::Selector::kCpq) return configured;
  if (cpq_overflows_ > 0) return MatchEngineOptions::Selector::kBucketSelect;
  const double cpq_rate = SelectRate(MatchEngineOptions::Selector::kCpq);
  const double bucket_rate =
      SelectRate(MatchEngineOptions::Selector::kBucketSelect);
  if (cpq_rate > 0 && bucket_rate > 0 &&
      bucket_rate < kSelectorSwitchRatio * cpq_rate) {
    return MatchEngineOptions::Selector::kBucketSelect;
  }
  return configured;
}

void CostModel::RecordEscalation() {
  ++escalations_;
  residency_margin_ =
      std::max(kMarginFloor, residency_margin_ * kEscalationShrink);
}

double CostModel::EstimateExecuteSeconds(uint64_t postings_scanned,
                                         uint32_t num_queries) const {
  return rates_.match_s_per_posting * static_cast<double>(postings_scanned) +
         rates_.select_s_per_query * num_queries;
}

double CostModel::EstimatePrepareSeconds(uint32_t num_queries) const {
  return rates_.prepare_s_per_query * num_queries;
}

std::string CostModel::DebugString() const {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "observations=%llu escalations=%u cpq_overflows=%u margin=%.2f "
      "match=%.3gs/posting select=%.3gs/query prepare=%.3gs/query "
      "merge=%.3gs/(query*part)",
      static_cast<unsigned long long>(observations_), escalations_,
      cpq_overflows_, residency_margin_, rates_.match_s_per_posting,
      rates_.select_s_per_query, rates_.prepare_s_per_query,
      rates_.merge_s_per_query_part);
  return buffer;
}

}  // namespace plan
}  // namespace genie
