#include "plan/query_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace genie {
namespace plan {

namespace {

/// Queries per stream chunk, bounded away from both degenerate ends.
constexpr uint32_t kMaxPlannedChunk = 65536;

uint64_t PartVolume(const IndexStats& stats,
                    const std::vector<ObjectId>& boundaries, uint32_t p) {
  return stats.PrefixVolume(boundaries[p + 1]) -
         stats.PrefixVolume(boundaries[p]);
}

/// Longest-processing-time placement of parts onto devices, by postings
/// volume. Deterministic: ties break toward the lower part id / lower
/// device ordinal, and uniform volumes reduce to the legacy round-robin
/// p % N assignment.
std::vector<uint32_t> PlaceParts(const IndexStats& stats,
                                 const std::vector<ObjectId>& boundaries,
                                 uint32_t num_parts, uint32_t num_devices) {
  std::vector<uint64_t> volumes(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    volumes[p] = PartVolume(stats, boundaries, p);
  }
  std::vector<uint32_t> order(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) order[p] = p;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return volumes[a] > volumes[b];
  });
  std::vector<uint64_t> load(num_devices, 0);
  std::vector<uint32_t> device_of_part(num_parts, 0);
  for (const uint32_t p : order) {
    uint32_t best = 0;
    for (uint32_t d = 1; d < num_devices; ++d) {
      if (load[d] < load[best]) best = d;
    }
    device_of_part[p] = best;
    load[best] += volumes[p];
  }
  return device_of_part;
}

}  // namespace

const char* TierToString(ExecutionPlan::Tier tier) {
  switch (tier) {
    case ExecutionPlan::Tier::kSingleDevice: return "single-device";
    case ExecutionPlan::Tier::kMultiDevice: return "multi-device";
    case ExecutionPlan::Tier::kMultiLoad: return "multi-load";
    case ExecutionPlan::Tier::kRemote: return "remote";
  }
  return "unknown";
}

const char* SelectorToString(MatchEngineOptions::Selector selector) {
  switch (selector) {
    case MatchEngineOptions::Selector::kCpq: return "cpq";
    case MatchEngineOptions::Selector::kCountTableSpq: return "count-table";
    case MatchEngineOptions::Selector::kBucketSelect: return "bucket-select";
  }
  return "unknown";
}

double ExecutionPlan::PartVolumeRatio(const IndexStats& stats) const {
  if (part_boundaries.size() < 2) return 1.0;
  uint64_t min_volume = std::numeric_limits<uint64_t>::max();
  uint64_t max_volume = 0;
  for (uint32_t p = 0; p + 1 < part_boundaries.size(); ++p) {
    const uint64_t volume =
        stats.PrefixVolume(part_boundaries[p + 1]) -
        stats.PrefixVolume(part_boundaries[p]);
    min_volume = std::min(min_volume, volume);
    max_volume = std::max(max_volume, volume);
  }
  if (min_volume == 0) {
    return max_volume == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(max_volume) / static_cast<double>(min_volume);
}

std::string ExecutionPlan::DebugString() const {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "%s tier=%s selector=%s parts=%u chunk=%u pipeline_depth=%u",
                planned ? "planned" : "fallback", TierToString(tier),
                SelectorToString(selector), num_parts, chunk_size,
                pipeline_depth);
  std::string out = buffer;
  if (part_boundaries.size() >= 2) {
    out += " boundaries=[";
    for (size_t b = 0; b < part_boundaries.size(); ++b) {
      if (b > 0) out += ' ';
      out += std::to_string(part_boundaries[b]);
    }
    out += ']';
  }
  if (!device_of_part.empty()) {
    out += " placement=[";
    for (size_t p = 0; p < device_of_part.size(); ++p) {
      if (p > 0) out += ' ';
      out += std::to_string(device_of_part[p]);
    }
    out += ']';
  }
  return out;
}

ExecutionPlan QueryPlanner::Plan(const PlannerInputs& inputs,
                                 const CostModel& model) const {
  const IndexStats& stats = *stats_;
  ExecutionPlan plan;
  plan.planned = true;
  plan.selector = model.PreferredSelector(inputs.selector);

  const uint64_t volume_bytes = stats.total_postings * sizeof(ObjectId);
  const uint64_t free_bytes = inputs.capacity_bytes > inputs.allocated_bytes
                                  ? inputs.capacity_bytes -
                                        inputs.allocated_bytes
                                  : 0;
  const double margin = model.residency_margin();
  const uint64_t usable_bytes =
      static_cast<uint64_t>(static_cast<double>(free_bytes) * margin);
  const uint32_t max_useful_parts = std::max(1u, stats.num_objects);

  // Part count the multi-load tier needs so each part's List Array fits in
  // part_capacity_fraction of the (margin-discounted) device capacity.
  const auto multi_load_parts = [&](uint32_t at_least) {
    const double budget = static_cast<double>(inputs.capacity_bytes) *
                          std::clamp(inputs.part_capacity_fraction, 0.05,
                                     1.0) *
                          margin;
    uint32_t parts =
        budget > 0 ? static_cast<uint32_t>(
                         std::ceil(static_cast<double>(volume_bytes) /
                                   budget))
                   : 2;
    parts = std::clamp(parts, 2u, inputs.max_parts);
    parts = std::max(parts, at_least);
    return std::min(parts, std::max(2u, max_useful_parts));
  };

  if (inputs.num_remote_workers > 0) {
    // Remote endpoints configured: the tier is forced; the planning freedom
    // left is the shard->worker cut, balanced by postings volume so no
    // worker becomes the scatter's straggler.
    uint32_t parts = std::min(inputs.num_remote_workers, max_useful_parts);
    parts = std::max(parts, 1u);
    plan.tier = ExecutionPlan::Tier::kRemote;
    plan.part_boundaries = BalancedBoundaries(stats, parts);
    plan.num_parts = static_cast<uint32_t>(plan.part_boundaries.size() - 1);
    // The coordinator holds no device residency: chunk large so the RPC
    // fan-out is amortized, no pipeline (workers own their own staging).
    plan.chunk_size = kMaxPlannedChunk;
    plan.pipeline_depth = 1;
    plan.planned = true;
    return plan;
  }

  if (inputs.num_devices > 1) {
    // Space multiplexing requested: shard across the devices with
    // volume-balanced boundaries, unless the per-device residency
    // predictably exceeds memory — then time-multiplex instead (exactly
    // the legacy fallback, decided up front).
    uint32_t parts = std::max(inputs.num_devices, inputs.force_parts);
    parts = std::min(parts, max_useful_parts);
    std::vector<ObjectId> boundaries = BalancedBoundaries(stats, parts);
    parts = static_cast<uint32_t>(boundaries.size() - 1);
    std::vector<uint32_t> placement =
        PlaceParts(stats, boundaries, parts, inputs.num_devices);
    std::vector<uint64_t> device_bytes(inputs.num_devices, 0);
    for (uint32_t p = 0; p < parts; ++p) {
      device_bytes[placement[p]] +=
          (stats.PrefixVolume(boundaries[p + 1]) -
           stats.PrefixVolume(boundaries[p])) *
          sizeof(ObjectId);
    }
    const uint64_t max_device_bytes =
        *std::max_element(device_bytes.begin(), device_bytes.end());
    if (max_device_bytes <= usable_bytes || !inputs.allow_multi_load) {
      plan.tier = ExecutionPlan::Tier::kMultiDevice;
      plan.num_parts = parts;
      plan.part_boundaries = std::move(boundaries);
      plan.device_of_part = std::move(placement);
    } else {
      plan.tier = ExecutionPlan::Tier::kMultiLoad;
      plan.num_parts = multi_load_parts(inputs.force_parts);
      plan.part_boundaries = BalancedBoundaries(stats, plan.num_parts);
      plan.num_parts =
          static_cast<uint32_t>(plan.part_boundaries.size() - 1);
    }
  } else if (inputs.force_parts > 0) {
    plan.tier = ExecutionPlan::Tier::kMultiLoad;
    plan.num_parts = std::min(inputs.force_parts, max_useful_parts);
    plan.part_boundaries = BalancedBoundaries(stats, plan.num_parts);
    plan.num_parts = static_cast<uint32_t>(plan.part_boundaries.size() - 1);
  } else if (volume_bytes <= usable_bytes || !inputs.allow_multi_load) {
    plan.tier = ExecutionPlan::Tier::kSingleDevice;
    plan.num_parts = 1;
  } else {
    plan.tier = ExecutionPlan::Tier::kMultiLoad;
    plan.num_parts = multi_load_parts(2);
    plan.part_boundaries = BalancedBoundaries(stats, plan.num_parts);
    plan.num_parts = static_cast<uint32_t>(plan.part_boundaries.size() - 1);
  }

  // Stream chunk size: queries whose working arenas fit in
  // memory_fraction of what stays free once the tier's residency is
  // accounted on the tightest device.
  uint64_t resident_bytes = volume_bytes;
  if (plan.tier == ExecutionPlan::Tier::kMultiLoad && plan.num_parts > 0) {
    resident_bytes = volume_bytes / plan.num_parts;
  } else if (plan.tier == ExecutionPlan::Tier::kMultiDevice) {
    resident_bytes =
        plan.num_parts > 0
            ? (volume_bytes + plan.num_parts - 1) / plan.num_parts *
                  ((plan.num_parts + inputs.num_devices - 1) /
                   inputs.num_devices)
            : volume_bytes;
  }
  const uint64_t working_bytes =
      usable_bytes > resident_bytes ? usable_bytes - resident_bytes : 0;
  const double fraction = std::clamp(inputs.memory_fraction, 0.0, 1.0);
  if (inputs.bytes_per_query > 0) {
    const uint64_t budget = static_cast<uint64_t>(
        static_cast<double>(working_bytes) * fraction);
    plan.chunk_size = static_cast<uint32_t>(std::clamp<uint64_t>(
        budget / inputs.bytes_per_query, 1, kMaxPlannedChunk));
  } else {
    plan.chunk_size = 1;
  }
  // Double-buffer the prepare stage whenever there is headroom beside one
  // executing chunk's arenas; the staged half is only the task lists, far
  // smaller than the working arenas it overlaps.
  plan.pipeline_depth =
      working_bytes > 0 && fraction < 1.0 && plan.chunk_size > 1 ? 2 : 1;
  return plan;
}

}  // namespace plan
}  // namespace genie
