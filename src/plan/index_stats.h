#pragma once

/// \file index_stats.h
/// The "what does the data look like" half of the query planner: a one-pass
/// summary of an inverted index — postings-volume histogram over the object
/// id space, Position-Map fan-out, rerank payload weight — computed at
/// build/open time and persisted in bundles so reopening an engine skips
/// the recompute. Everything the planner decides (tier, volume-balanced
/// part boundaries, device placement, chunk size) derives from this plus
/// the calibrated CostModel; the index itself is never consulted at plan
/// time.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "index/inverted_index.h"
#include "index/types.h"

namespace genie {
namespace plan {

/// Summary statistics of one InvertedIndex. Cheap to copy relative to the
/// index (at most ~kDefaultStatsBuckets histogram buckets), exact when the
/// object count is small enough for one bucket per object.
struct IndexStats {
  // --- Shape (also the fingerprint that ties stats to their index). --------
  uint32_t num_objects = 0;
  uint32_t vocab_size = 0;
  uint32_t num_lists = 0;
  uint32_t max_list_length = 0;
  uint64_t total_postings = 0;

  // --- Position-Map fan-out. ----------------------------------------------
  /// Keywords with at least one posting.
  uint32_t nonempty_keywords = 0;
  /// Mean (sub)lists per nonempty keyword: 1.0 with no load-balance
  /// splitting, > 1 after Fig. 4 long-list splits.
  double keyword_fanout = 0;

  // --- Postings-volume histogram over the object id space. -----------------
  /// Object ids per histogram bucket (>= 1; 1 means the histogram is exact).
  uint32_t bucket_width = 1;
  /// bucket_postings[b] = postings whose object id falls in
  /// [b * bucket_width, (b + 1) * bucket_width). Sums to total_postings.
  std::vector<uint64_t> bucket_postings;

  // --- Rerank payload weight. ----------------------------------------------
  /// Mean host-side payload bytes the rerank/verify stage reads per
  /// candidate (0 for modalities without a rerank stage, e.g. compiled).
  uint64_t rerank_payload_bytes_per_object = 0;

  bool operator==(const IndexStats&) const = default;

  /// Postings volume of object ids [0, end), at bucket granularity: ids of
  /// a partially covered bucket contribute proportionally.
  uint64_t PrefixVolume(ObjectId end) const;

  /// Max bucket volume over the mean (1.0 = perfectly uniform). The
  /// skew the volume-balanced sharding flattens.
  double VolumeSkew() const;

  /// True when these stats describe `index` (shape fingerprint match) —
  /// the guard that keeps stale persisted stats from steering the planner
  /// after a mutation/compaction changed the index.
  bool MatchesIndex(const InvertedIndex& index) const;

  std::string DebugString() const;
};

inline constexpr uint32_t kDefaultStatsBuckets = 1024;

/// One pass over the index (postings + Position Map).
/// `rerank_payload_bytes_per_object` is supplied by the caller — the index
/// does not know its modality's payload.
IndexStats ComputeIndexStats(const InvertedIndex& index,
                             uint64_t rerank_payload_bytes_per_object = 0,
                             uint32_t max_buckets = kDefaultStatsBuckets);

/// Splits [0, num_objects) into `parts` contiguous ranges of near-equal
/// postings volume (bucket-granular; exact when bucket_width == 1).
/// Returns parts + 1 ascending boundaries with boundaries[0] == 0 and
/// boundaries.back() == num_objects; every part is non-empty. `parts` is
/// clamped to [1, num_objects].
std::vector<ObjectId> BalancedBoundaries(const IndexStats& stats,
                                         uint32_t parts);

/// Bundle persistence of the stats blob (see docs/FORMATS.md).
void SerializeIndexStats(const IndexStats& stats, serialize::Writer* writer);
Status DeserializeIndexStats(serialize::Reader* reader, IndexStats* stats);

}  // namespace plan
}  // namespace genie
