#pragma once

/// \file query_planner.h
/// The algorithm/schedule split for GENIE execution (the Halide idiom): the
/// *what* — answer match-count batches over one inverted index — is fixed;
/// everything about *how* lives in an explicit ExecutionPlan. The planner
/// turns IndexStats (data shape) + CostModel (machine rates + escalation
/// feedback) + the caller's knobs into one plan — tier, postings-volume-
/// balanced part boundaries, device placement, stream chunk size, pipeline
/// depth — which EngineBackend then executes. The legacy try-and-escalate
/// path survives only as the safety net behind a plan that proves
/// optimistic, and each miss feeds the model for the next plan.

#include <cstdint>
#include <string>
#include <vector>

#include "index/types.h"
#include "plan/cost_model.h"
#include "plan/index_stats.h"

namespace genie {
namespace plan {

/// Everything the planner needs to know that is not in IndexStats or the
/// CostModel: the machine budget and the caller's backend knobs.
struct PlannerInputs {
  /// Memory budget of the execution device(s): per-device capacity and the
  /// bytes already allocated on the tightest one.
  uint64_t capacity_bytes = 0;
  uint64_t allocated_bytes = 0;
  /// Working bytes one query occupies in a batch at the configured k
  /// (MatchEngine::DeviceBytesPerQuery).
  uint64_t bytes_per_query = 0;
  /// The caller's configured select stage; the planner may promote kCpq to
  /// kBucketSelect based on the model's overflow / rate observations.
  MatchEngineOptions::Selector selector = MatchEngineOptions::Selector::kCpq;

  // Backend knobs (EngineBackendOptions semantics).
  uint32_t num_devices = 1;
  /// Remote worker endpoints configured (EngineBackendOptions::remote).
  /// Non-zero forces the remote tier: the planner's job reduces to cutting
  /// postings-volume-balanced shard boundaries, one shard per worker.
  uint32_t num_remote_workers = 0;
  uint32_t force_parts = 0;
  uint32_t max_parts = 256;
  bool allow_multi_load = true;
  double part_capacity_fraction = 0.5;
  /// Stream chunk sizing knob (SearchStreamOptions::memory_fraction).
  double memory_fraction = 0.5;
};

/// One schedule for executing batches. Plain data: applying it is the
/// backend's job, explaining it is DebugString's.
struct ExecutionPlan {
  enum class Tier {
    kSingleDevice,  // whole index resident on one device
    kMultiDevice,   // parts resident across N devices, parallel execution
    kMultiLoad,     // parts time-multiplexed through one device
    kRemote,        // shards scattered across worker processes (src/net/)
  };

  Tier tier = Tier::kSingleDevice;
  /// The select stage the engines are built with
  /// (CostModel::PreferredSelector of the configured selector).
  MatchEngineOptions::Selector selector = MatchEngineOptions::Selector::kCpq;
  uint32_t num_parts = 1;
  /// Contiguous part boundaries over the object id space, balanced by
  /// postings volume: part p covers ids
  /// [part_boundaries[p], part_boundaries[p+1]). Empty on the single tier.
  std::vector<ObjectId> part_boundaries;
  /// Device ordinal each part is resident on (multi-device tier only;
  /// volume-aware LPT assignment).
  std::vector<uint32_t> device_of_part;
  /// Queries per stream chunk that fit the working-memory budget.
  uint32_t chunk_size = 1;
  /// Chunks in flight: 2 = double-buffered prepare/execute pipeline, 1 =
  /// no overlap worth scheduling (or no memory headroom for it).
  uint32_t pipeline_depth = 1;
  /// True when a QueryPlanner produced this plan; false on the legacy
  /// try-and-escalate fallback path.
  bool planned = false;

  /// Max over min per-part postings volume (1.0 = perfectly balanced).
  /// Needs the stats the boundaries were cut from.
  double PartVolumeRatio(const IndexStats& stats) const;

  std::string DebugString() const;
};

const char* TierToString(ExecutionPlan::Tier tier);
const char* SelectorToString(MatchEngineOptions::Selector selector);

/// Stateless given its inputs: Plan() is a pure function of
/// (stats, model, inputs), so identical inputs yield identical plans —
/// the property the golden-plan tests pin down.
class QueryPlanner {
 public:
  explicit QueryPlanner(const IndexStats& stats) : stats_(&stats) {}

  /// Decides tier, parts, boundaries, placement, chunk size and pipeline
  /// depth. Never fails: with degenerate inputs (zero capacity, empty
  /// index) it emits the most conservative legal plan and lets the backend
  /// surface any execution error.
  ExecutionPlan Plan(const PlannerInputs& inputs,
                     const CostModel& model) const;

  const IndexStats& stats() const { return *stats_; }

 private:
  const IndexStats* stats_;
};

}  // namespace plan
}  // namespace genie
