#pragma once

/// \file fairness.h
/// Per-tenant admission and scheduling policy of the serving layer:
/// weighted deficit round-robin (DRR) over tenant queues, with a per-tenant
/// pending bound enforced as ResourceExhausted backpressure at admission.
/// A flooding tenant therefore costs itself latency (its own queue grows
/// until it is rejected) while light tenants keep draining every round.
///
/// Not internally synchronized — the RequestScheduler serializes all calls
/// under its own lock.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace genie {
namespace serve {

struct FairnessOptions {
  /// Queries a unit-weight tenant may dequeue per DRR round.
  uint32_t quantum = 64;
  /// Pending submissions per tenant before Admit rejects. 0 = unbounded.
  uint32_t max_pending_per_tenant = 0;
  /// Tenant weights; unlisted tenants weigh 1.0. Weights scale the quantum,
  /// so a weight-2 tenant drains twice the queries per round.
  std::vector<std::pair<uint64_t, double>> weights;
};

class FairnessPolicy {
 public:
  explicit FairnessPolicy(const FairnessOptions& options);

  /// Queues submission `handle` (an opaque id of the scheduler) carrying
  /// `queries` queries for `tenant`. Fails with ResourceExhausted when the
  /// tenant's queue is at its bound.
  Status Admit(uint64_t tenant, uint64_t handle, uint32_t queries);

  /// Removes a queued submission (dedup leaders cancelled by the scheduler,
  /// shutdown drains). Returns true when found.
  bool Remove(uint64_t tenant, uint64_t handle);

  /// Dequeues the next super-batch: whole submissions, FIFO within a
  /// tenant, tenants served deficit-round-robin, stopping near `budget`
  /// queries. Progress is guaranteed — when the first eligible submission
  /// alone exceeds the budget or its tenant's deficit, it is taken anyway
  /// (a super-batch is never smaller than one submission, never empty while
  /// work is pending).
  std::vector<uint64_t> NextBatch(uint32_t budget);

  size_t pending(uint64_t tenant) const;
  size_t total_pending() const { return total_pending_; }

 private:
  struct Item {
    uint64_t handle = 0;
    uint32_t queries = 0;
  };
  struct TenantQueue {
    std::deque<Item> items;
    double deficit = 0;
  };

  double WeightOf(uint64_t tenant) const;

  const FairnessOptions options_;
  std::unordered_map<uint64_t, TenantQueue> queues_;
  /// DRR rotation order of tenants with pending work.
  std::deque<uint64_t> active_;
  size_t total_pending_ = 0;
};

}  // namespace serve
}  // namespace genie
