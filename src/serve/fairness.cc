#include "serve/fairness.h"

#include <algorithm>

namespace genie {
namespace serve {

FairnessPolicy::FairnessPolicy(const FairnessOptions& options)
    : options_(options) {}

double FairnessPolicy::WeightOf(uint64_t tenant) const {
  for (const auto& [id, weight] : options_.weights) {
    if (id == tenant) return std::max(weight, 1e-6);
  }
  return 1.0;
}

Status FairnessPolicy::Admit(uint64_t tenant, uint64_t handle,
                             uint32_t queries) {
  TenantQueue& q = queues_[tenant];
  if (options_.max_pending_per_tenant > 0 &&
      q.items.size() >= options_.max_pending_per_tenant) {
    return Status::ResourceExhausted(
        "tenant queue full: " + std::to_string(q.items.size()) +
        " pending submissions (max_pending_per_tenant)");
  }
  // Invariant: a tenant is in the DRR rotation iff its queue is non-empty.
  if (q.items.empty()) active_.push_back(tenant);
  q.items.push_back(Item{handle, std::max<uint32_t>(queries, 1)});
  ++total_pending_;
  return Status::OK();
}

bool FairnessPolicy::Remove(uint64_t tenant, uint64_t handle) {
  auto qit = queues_.find(tenant);
  if (qit == queues_.end()) return false;
  TenantQueue& q = qit->second;
  auto it = std::find_if(q.items.begin(), q.items.end(),
                         [&](const Item& i) { return i.handle == handle; });
  if (it == q.items.end()) return false;
  q.items.erase(it);
  --total_pending_;
  if (q.items.empty()) {
    q.deficit = 0;
    auto ait = std::find(active_.begin(), active_.end(), tenant);
    if (ait != active_.end()) active_.erase(ait);
  }
  return true;
}

std::vector<uint64_t> FairnessPolicy::NextBatch(uint32_t budget) {
  std::vector<uint64_t> batch;
  if (budget == 0) budget = 1;
  uint32_t taken = 0;
  while (!active_.empty() && taken < budget) {
    const size_t tenants_this_round = active_.size();
    bool progressed = false;
    for (size_t i = 0; i < tenants_this_round && taken < budget; ++i) {
      const uint64_t tenant = active_.front();
      active_.pop_front();
      TenantQueue& q = queues_[tenant];
      q.deficit += options_.quantum * WeightOf(tenant);
      while (!q.items.empty() && taken < budget) {
        const Item& head = q.items.front();
        // Keep super-batches near the budget: a submission that would push
        // past it waits for the next batch — unless it would be the only
        // member, in which case it must run alone or nothing ever runs.
        if (taken > 0 && taken + head.queries > budget) break;
        // Progress guarantee: a head larger than any accrued deficit is
        // still taken when the batch is otherwise empty; its cost is
        // charged (deficit may go negative), so the tenant repays the
        // overdraft across later rounds.
        if (head.queries > q.deficit && !batch.empty()) break;
        q.deficit -= head.queries;
        batch.push_back(head.handle);
        taken += head.queries;
        q.items.pop_front();
        --total_pending_;
        progressed = true;
      }
      if (q.items.empty()) {
        q.deficit = 0;  // an emptied queue forfeits leftover credit
      } else {
        active_.push_back(tenant);
      }
    }
    if (!progressed) break;  // every head oversize: wait for the next call
  }
  return batch;
}

size_t FairnessPolicy::pending(uint64_t tenant) const {
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.items.size();
}

}  // namespace serve
}  // namespace genie
