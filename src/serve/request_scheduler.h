#pragma once

/// \file request_scheduler.h
/// The serving layer's continuous-batching scheduler. Individual Search
/// submissions are admitted into per-tenant queues (FairnessPolicy), and a
/// dedicated dispatcher thread coalesces compatible pending submissions
/// into device-sized super-batches — dispatching when the plan-informed
/// target batch fills or the oldest admission hits the max_queue_delay
/// deadline, whichever comes first — executes them through the engine's
/// Searcher, and demuxes per-submission results back to their futures.
///
/// Two short-circuits run at admission, before a submission ever queues:
///   - hot-query ResultCache hit (generation- and TTL-checked): the cached
///     answers are returned immediately, profile.cache_hits set;
///   - in-flight dedup: a submission identical to a still-QUEUED leader
///     attaches as a follower and shares the leader's answer. Only queued
///     leaders are joined — a batch already executing may straddle a
///     mutation, so late identical arrivals become fresh leaders.
///
/// Results are bit-identical to the legacy per-request path: coalescing
/// concatenates query payloads in admission order and slices the batch
/// answer back apart; the backend sees one batch whose per-query answers
/// do not depend on batch composition.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "api/searcher.h"
#include "api/types.h"
#include "common/result.h"
#include "serve/fairness.h"
#include "serve/result_cache.h"

namespace genie {
namespace serve {

class RequestScheduler {
 public:
  /// `searcher` must outlive the scheduler (Engine guarantees it: the
  /// scheduler member is declared after — so destroyed before — the
  /// searcher).
  RequestScheduler(Searcher* searcher, const ServingOptions& options);

  /// Fails every pending submission, stops the dispatcher, joins.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Admits one request and blocks until its answer is ready. The request's
  /// payload spans are borrowed until return. Fails with ResourceExhausted
  /// when the tenant's queue is at its bound.
  Result<SearchResult> Submit(const SearchRequest& request);

  /// Non-blocking admission; the payload spans must stay alive until the
  /// future resolves. Backpressure rejections resolve the future with
  /// ResourceExhausted (admission itself never blocks).
  std::future<Result<SearchResult>> SubmitAsync(const SearchRequest& request);

  ServingStats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

  using Clock = std::chrono::steady_clock;

  /// One admitted request (public only for the .cc's merge helpers).
  struct Submission {
    uint64_t handle = 0;
    uint64_t fingerprint = 0;
    /// Shallow copy of the caller's request: payload spans stay borrowed
    /// from the caller, which Submit / SubmitAsync's contract keeps alive.
    SearchRequest request;
    uint32_t num_queries = 0;
    Clock::time_point enqueued;
    std::promise<Result<SearchResult>> promise;
    /// Dedup followers awaiting this leader's answer.
    std::vector<std::promise<Result<SearchResult>>> followers;
  };

 private:
  void DispatcherLoop();
  /// Executes one super-batch (no scheduler lock held) and fulfills its
  /// submissions' promises.
  void ExecuteBatch(std::vector<std::unique_ptr<Submission>> batch);
  uint32_t TargetBatch() const;

  Searcher* const searcher_;
  const ServingOptions options_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  FairnessPolicy fairness_;
  std::unordered_map<uint64_t, std::unique_ptr<Submission>> pending_;
  /// fingerprint -> handle of the QUEUED leader identical submissions join.
  std::unordered_map<uint64_t, uint64_t> inflight_;
  uint64_t next_handle_ = 1;
  uint32_t pending_queries_ = 0;
  ServingStats stats_;
  bool stop_ = false;

  std::thread dispatcher_;  // started last, so everything above is ready
};

}  // namespace serve
}  // namespace genie
