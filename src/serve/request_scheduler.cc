#include "serve/request_scheduler.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_assembler.h"
#include "serve/fingerprint.h"

namespace genie {
namespace serve {
namespace {

double SecondsBetween(RequestScheduler::Clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Owned payload buffers of a coalesced super-batch: submissions' borrowed
/// spans are concatenated (in admission order) into these, and the merged
/// SearchRequest's spans borrow from here for the one backend call.
struct MergedPayload {
  data::PointMatrix points;
  std::vector<std::vector<uint32_t>> sets;
  std::vector<std::string> sequences;
  std::vector<std::vector<uint32_t>> documents;
  std::vector<sa::RangeQuery> ranges;
  std::vector<Query> compiled;
};

SearchRequest MergeRequests(
    const std::vector<std::unique_ptr<RequestScheduler::Submission>>& batch,
    MergedPayload* payload);

}  // namespace

RequestScheduler::RequestScheduler(Searcher* searcher,
                                   const ServingOptions& options)
    : searcher_(searcher),
      options_(options),
      cache_(ResultCacheOptions{options.cache_capacity, options.cache_ttl_s}),
      fairness_(FairnessOptions{options.fairness_quantum,
                                options.max_pending_per_tenant,
                                options.tenant_weights}),
      dispatcher_([this] { DispatcherLoop(); }) {}

RequestScheduler::~RequestScheduler() {
  std::vector<std::unique_ptr<Submission>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& [handle, sub] : pending_) orphaned.push_back(std::move(sub));
    pending_.clear();
    inflight_.clear();
    pending_queries_ = 0;
  }
  work_cv_.notify_all();
  dispatcher_.join();
  for (auto& sub : orphaned) {
    const Status aborted =
        Status::Internal("serving scheduler shut down with request pending");
    for (auto& follower : sub->followers) follower.set_value(aborted);
    sub->promise.set_value(aborted);
  }
}

uint32_t RequestScheduler::TargetBatch() const {
  return BatchAssembler::ResolveTargetBatch(
      options_.target_batch, searcher_->PlannedChunkSize(), 1024);
}

Result<SearchResult> RequestScheduler::Submit(const SearchRequest& request) {
  return SubmitAsync(request).get();
}

std::future<Result<SearchResult>> RequestScheduler::SubmitAsync(
    const SearchRequest& request) {
  // Fingerprinting walks the whole payload — keep it outside the lock.
  const uint64_t fingerprint = FingerprintRequest(request);
  const uint32_t num_queries = static_cast<uint32_t>(request.num_queries());
  std::promise<Result<SearchResult>> promise;
  std::future<Result<SearchResult>> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (stop_) {
    lock.unlock();
    promise.set_value(
        Status::Internal("serving scheduler is shutting down"));
    return future;
  }

  // Short-circuit 1: hot-query cache, keyed on content fingerprint and the
  // engine's current data generation — a hit is provably mutation-fresh.
  const uint64_t generation = searcher_->DataGeneration();
  if (auto cached = cache_.Lookup(fingerprint, generation)) {
    ++stats_.cache_hits;
    lock.unlock();
    SearchResult result;
    result.queries = std::move(*cached);
    result.profile.cache_hits = num_queries;
    result.cumulative = result.profile;
    promise.set_value(std::move(result));
    return future;
  }

  // Short-circuit 2: attach to an identical submission that is still
  // queued. Executing leaders are deliberately not joinable — their batch
  // may straddle a mutation this submission must observe.
  if (options_.dedup_inflight) {
    auto leader = inflight_.find(fingerprint);
    if (leader != inflight_.end()) {
      auto pending = pending_.find(leader->second);
      if (pending != pending_.end()) {
        ++stats_.dedup_followers;
        pending->second->followers.push_back(std::move(promise));
        return future;
      }
      inflight_.erase(leader);  // stale entry: leader already dispatched
    }
  }

  const uint64_t handle = next_handle_++;
  const Status admitted = fairness_.Admit(request.tenant, handle, num_queries);
  if (!admitted.ok()) {
    ++stats_.rejected;
    lock.unlock();
    promise.set_value(admitted);
    return future;
  }
  ++stats_.cache_misses;

  auto sub = std::make_unique<Submission>();
  sub->handle = handle;
  sub->fingerprint = fingerprint;
  sub->request = request;
  sub->num_queries = num_queries;
  sub->enqueued = Clock::now();
  sub->promise = std::move(promise);
  pending_.emplace(handle, std::move(sub));
  if (options_.dedup_inflight) inflight_[fingerprint] = handle;
  pending_queries_ += num_queries;
  lock.unlock();
  work_cv_.notify_all();
  return future;
}

void RequestScheduler::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_) return;
    if (pending_.empty()) {
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    const uint32_t target = TargetBatch();
    if (pending_queries_ < target) {
      // Continuous batching's latency knob: wait for more work, but never
      // past the oldest admission's deadline.
      Clock::time_point oldest = Clock::time_point::max();
      for (const auto& [handle, sub] : pending_)
        oldest = std::min(oldest, sub->enqueued);
      const auto deadline =
          oldest + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(
                           std::max(options_.max_queue_delay_s, 0.0)));
      if (Clock::now() < deadline) {
        work_cv_.wait_until(lock, deadline, [this, target] {
          return stop_ || pending_queries_ >= target;
        });
        continue;  // re-evaluate: filled, timed out, or stopping
      }
    }

    const std::vector<uint64_t> handles = fairness_.NextBatch(target);
    if (handles.empty()) continue;
    std::vector<std::unique_ptr<Submission>> batch;
    batch.reserve(handles.size());
    for (uint64_t handle : handles) {
      auto it = pending_.find(handle);
      if (it == pending_.end()) continue;
      // From here on the leader is executing: identical new arrivals must
      // become fresh leaders (see dedup note in the header).
      auto leader = inflight_.find(it->second->fingerprint);
      if (leader != inflight_.end() && leader->second == handle)
        inflight_.erase(leader);
      pending_queries_ -= it->second->num_queries;
      batch.push_back(std::move(it->second));
      pending_.erase(it);
    }
    if (batch.empty()) continue;
    lock.unlock();
    ExecuteBatch(std::move(batch));
    lock.lock();
  }
}

void RequestScheduler::ExecuteBatch(
    std::vector<std::unique_ptr<Submission>> batch) {
  // Generation is captured before execution: if a mutation lands while the
  // batch runs, these answers are cached under the pre-mutation generation
  // and the next lookup (seeing the bumped generation) misses.
  const uint64_t generation = searcher_->DataGeneration();
  const Clock::time_point started = Clock::now();

  Result<SearchResult> executed = [&]() -> Result<SearchResult> {
    if (batch.size() == 1) return searcher_->Search(batch[0]->request);
    MergedPayload payload;
    const SearchRequest merged = MergeRequests(batch, &payload);
    return searcher_->Search(merged);
  }();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.coalesced_requests += batch.size();
    for (const auto& sub : batch) {
      stats_.executed_queries += sub->num_queries;
      const double waited = SecondsBetween(sub->enqueued, started);
      stats_.total_queue_seconds += waited;
      stats_.max_queue_seconds = std::max(stats_.max_queue_seconds, waited);
    }
  }

  if (!executed.ok()) {
    for (auto& sub : batch) {
      for (auto& follower : sub->followers)
        follower.set_value(executed.status());
      sub->promise.set_value(executed.status());
    }
    return;
  }

  // Demux: slice the batch answer back into per-submission results, in the
  // admission order the payloads were concatenated in.
  SearchResult& whole = *executed;
  size_t offset = 0;
  for (auto& sub : batch) {
    SearchResult part;
    part.queries.assign(
        std::make_move_iterator(whole.queries.begin() + offset),
        std::make_move_iterator(whole.queries.begin() + offset +
                                sub->num_queries));
    offset += sub->num_queries;
    part.profile = whole.profile;
    part.profile.queue_seconds = SecondsBetween(sub->enqueued, started);
    part.profile.coalesced_batch = static_cast<uint32_t>(batch.size());
    part.profile.cache_hits = 0;
    part.cumulative = whole.cumulative;
    part.cumulative.queue_seconds = part.profile.queue_seconds;
    part.cumulative.coalesced_batch = part.profile.coalesced_batch;
    cache_.Insert(sub->fingerprint, generation, part.queries);
    for (auto& follower : sub->followers) follower.set_value(part);
    sub->promise.set_value(std::move(part));
  }
}

ServingStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

namespace {

SearchRequest MergeRequests(
    const std::vector<std::unique_ptr<RequestScheduler::Submission>>& batch,
    MergedPayload* payload) {
  const Modality modality = batch[0]->request.modality;
  switch (modality) {
    case Modality::kPoints: {
      uint32_t rows = 0;
      for (const auto& sub : batch)
        rows += sub->request.points->num_points();
      payload->points =
          data::PointMatrix(rows, batch[0]->request.points->dim());
      uint32_t row = 0;
      for (const auto& sub : batch) {
        const data::PointMatrix& src = *sub->request.points;
        for (uint32_t i = 0; i < src.num_points(); ++i, ++row) {
          const std::span<const float> from = src.row(i);
          std::copy(from.begin(), from.end(),
                    payload->points.mutable_row(row).begin());
        }
      }
      return SearchRequest::Points(payload->points);
    }
    case Modality::kSets:
      for (const auto& sub : batch)
        payload->sets.insert(payload->sets.end(), sub->request.sets.begin(),
                             sub->request.sets.end());
      return SearchRequest::Sets(payload->sets);
    case Modality::kSequences:
      for (const auto& sub : batch)
        payload->sequences.insert(payload->sequences.end(),
                                  sub->request.sequences.begin(),
                                  sub->request.sequences.end());
      return SearchRequest::Sequences(payload->sequences);
    case Modality::kDocuments:
      for (const auto& sub : batch)
        payload->documents.insert(payload->documents.end(),
                                  sub->request.documents.begin(),
                                  sub->request.documents.end());
      return SearchRequest::Documents(payload->documents);
    case Modality::kRelational:
      for (const auto& sub : batch)
        payload->ranges.insert(payload->ranges.end(),
                               sub->request.ranges.begin(),
                               sub->request.ranges.end());
      return SearchRequest::Ranges(payload->ranges);
    case Modality::kCompiled:
      for (const auto& sub : batch)
        payload->compiled.insert(payload->compiled.end(),
                                 sub->request.compiled.begin(),
                                 sub->request.compiled.end());
      return SearchRequest::Compiled(payload->compiled);
  }
  return batch[0]->request;  // unreachable
}

}  // namespace

}  // namespace serve
}  // namespace genie
