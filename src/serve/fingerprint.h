#pragma once

/// \file fingerprint.h
/// Content fingerprint of a SearchRequest, keying the serving layer's
/// hot-query ResultCache and its in-flight dedup. Two requests with the
/// same modality and byte-identical query payloads fingerprint equal; the
/// tenant id is deliberately excluded so identical queries from different
/// tenants share cache entries and leaders.

#include <cstdint>

#include "api/types.h"

namespace genie {
namespace serve {

/// 64-bit Murmur3 chain over the request's modality and query payload.
/// Collisions are possible in principle (64-bit digest) but never produce
/// wrong answers silently in practice: payloads of different lengths mix
/// their lengths into the chain, and the digest space dwarfs any realistic
/// cache population.
uint64_t FingerprintRequest(const SearchRequest& request);

}  // namespace serve
}  // namespace genie
