#include "serve/fingerprint.h"

#include "lsh/murmur3.h"

namespace genie {
namespace serve {
namespace {

constexpr uint64_t kSeed = 0x9e113ull;  // arbitrary fixed chain seed

uint64_t MixBytes(uint64_t h, const void* data, size_t len) {
  // Length first: a payload boundary must never be ambiguous when two
  // adjacent variable-length fields are chained.
  h = lsh::Murmur3_64(static_cast<uint64_t>(len), h);
  return lsh::Murmur3_64(data, len, h);
}

template <typename T>
uint64_t MixVector(uint64_t h, const std::vector<T>& values) {
  return MixBytes(h, values.data(), values.size() * sizeof(T));
}

}  // namespace

uint64_t FingerprintRequest(const SearchRequest& request) {
  uint64_t h = lsh::Murmur3_64(static_cast<uint64_t>(request.modality), kSeed);
  switch (request.modality) {
    case Modality::kPoints: {
      if (request.points == nullptr) return h;
      h = lsh::Murmur3_64(request.points->dim(), h);
      const std::span<const float> values = request.points->values();
      h = MixBytes(h, values.data(), values.size_bytes());
      return h;
    }
    case Modality::kSets:
      for (const std::vector<uint32_t>& set : request.sets)
        h = MixVector(h, set);
      return h;
    case Modality::kSequences:
      for (const std::string& seq : request.sequences)
        h = MixBytes(h, seq.data(), seq.size());
      return h;
    case Modality::kDocuments:
      for (const std::vector<uint32_t>& doc : request.documents)
        h = MixVector(h, doc);
      return h;
    case Modality::kRelational:
      for (const sa::RangeQuery& range : request.ranges) {
        h = lsh::Murmur3_64(static_cast<uint64_t>(range.items.size()), h);
        for (const sa::RangeQuery::Item& item : range.items) {
          h = lsh::Murmur3_64(item.column, h);
          h = lsh::Murmur3_64(item.lo, h);
          h = lsh::Murmur3_64(item.hi, h);
        }
      }
      return h;
    case Modality::kCompiled:
      for (const Query& query : request.compiled) {
        h = lsh::Murmur3_64(query.num_items(), h);
        for (uint32_t i = 0; i < query.num_items(); ++i) {
          const std::span<const Keyword> item = query.item(i);
          h = MixBytes(h, item.data(), item.size_bytes());
        }
      }
      return h;
  }
  return h;
}

}  // namespace serve
}  // namespace genie
