#pragma once

/// \file result_cache.h
/// Hot-query result cache of the serving layer. Keys are request content
/// fingerprints (serve/fingerprint.h); values are the per-query answers of
/// one request. Entries are invalidated two ways:
///   - generation: every entry records the engine's data generation at
///     execution time (EngineBackend::data_generation, bumped by Insert /
///     Remove / the compaction hot-swap). A lookup under a newer generation
///     misses, so a query after any mutation can never observe a stale
///     cached answer.
///   - TTL: entries older than the configured age miss and are dropped.
/// Capacity is bounded with LRU eviction. Thread-safe.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "api/types.h"

namespace genie {
namespace serve {

struct ResultCacheOptions {
  uint32_t capacity = 1024;  // entries; 0 disables the cache entirely
  double ttl_s = 60.0;       // <= 0: no age expiry (generation still applies)
};

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      // LRU capacity evictions
    uint64_t invalidations = 0;  // generation / TTL drops observed on lookup
  };

  explicit ResultCache(const ResultCacheOptions& options);

  /// Returns the cached answers when an entry for `key` exists, carries
  /// `generation`, and is within TTL; nullopt (and drops any stale entry)
  /// otherwise.
  std::optional<std::vector<QueryHits>> Lookup(uint64_t key,
                                               uint64_t generation);

  /// Caches `hits` under `key` at `generation`, evicting the least recently
  /// used entry when full. No-op when the cache is disabled.
  void Insert(uint64_t key, uint64_t generation,
              const std::vector<QueryHits>& hits);

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t generation = 0;
    double inserted_s = 0;  // steady-clock seconds
    std::vector<QueryHits> hits;
  };

  double NowSeconds() const;

  const ResultCacheOptions options_;
  mutable std::mutex mu_;
  // LRU: most recently used at the front; map values point into the list.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace serve
}  // namespace genie
