#include "serve/result_cache.h"

#include <chrono>

namespace genie {
namespace serve {

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options) {}

double ResultCache::NowSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::optional<std::vector<QueryHits>> ResultCache::Lookup(
    uint64_t key, uint64_t generation) {
  if (options_.capacity == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  const bool expired =
      options_.ttl_s > 0 && NowSeconds() - entry.inserted_s > options_.ttl_s;
  if (entry.generation != generation || expired) {
    // Stale: the index mutated since this answer was computed (or the entry
    // aged out). Drop it so it cannot be served at any later generation.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
  ++stats_.hits;
  return entry.hits;
}

void ResultCache::Insert(uint64_t key, uint64_t generation,
                         const std::vector<QueryHits>& hits) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (a re-execution after invalidation, or a racing
    // duplicate execution — latest answer wins).
    it->second->generation = generation;
    it->second->inserted_s = NowSeconds();
    it->second->hits = hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, generation, NowSeconds(), hits});
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace serve
}  // namespace genie
