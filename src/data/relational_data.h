#pragma once

/// \file relational_data.h
/// Synthetic relational table standing in for the Adult census dataset
/// (DESIGN.md §2): a mix of numeric columns (discretized to 1024 equal
/// intervals, as the paper does) and low-cardinality skewed categorical
/// columns (sex, race, ... — the source of the extremely long postings
/// lists in the load-balance experiment of Fig. 12).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sa/relational.h"

namespace genie {
namespace data {

struct RelationalDatasetOptions {
  uint32_t num_rows = 10000;
  uint32_t numeric_columns = 6;
  uint32_t numeric_buckets = 1024;
  uint32_t categorical_columns = 8;
  uint32_t categorical_cardinality = 8;
  /// Zipf exponent of categorical value frequencies; higher = longer
  /// dominant postings lists.
  double categorical_skew = 1.2;
  uint64_t seed = 42;
};

sa::RelationalTable MakeRelationalTable(
    const RelationalDatasetOptions& options);

/// The paper's Adult query protocol: take rows as query centers, numeric
/// items get the range [v - 50, v + 50] (clamped), categorical items exact
/// match.
std::vector<sa::RangeQuery> MakeRangeQueries(
    const sa::RelationalTable& table, uint32_t count, uint32_t numeric_columns,
    uint32_t numeric_halfwidth, uint64_t seed);

/// Exact-match queries on every column (the Fig. 12 load-balance workload:
/// "we exert exact match for all attributes and return the best match").
std::vector<sa::RangeQuery> MakeExactMatchQueries(
    const sa::RelationalTable& table, uint32_t count, uint64_t seed);

}  // namespace data
}  // namespace genie
