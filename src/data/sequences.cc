#include "data/sequences.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace genie {
namespace data {

std::vector<std::string> MakeSequences(const SequenceDatasetOptions& options) {
  GENIE_CHECK(options.alphabet >= 2 && options.alphabet <= 26);
  GENIE_CHECK(options.min_length >= 1 &&
              options.min_length <= options.max_length);
  Rng rng(options.seed);
  std::vector<std::string> out(options.num_sequences);
  for (auto& seq : out) {
    const uint32_t len = static_cast<uint32_t>(
        rng.UniformInt(options.min_length, options.max_length));
    seq.resize(len);
    for (auto& ch : seq) {
      ch = static_cast<char>('a' + rng.UniformU64(options.alphabet));
    }
  }
  return out;
}

std::string MutateSequence(const std::string& seq, double rate,
                           uint32_t alphabet, Rng* rng) {
  GENIE_CHECK(rate >= 0 && alphabet >= 2);
  std::string out = seq;
  const uint32_t edits = static_cast<uint32_t>(
      std::ceil(rate * static_cast<double>(seq.size())));
  for (uint32_t e = 0; e < edits && !out.empty(); ++e) {
    const uint64_t kind = rng->UniformU64(4);
    const size_t pos = static_cast<size_t>(rng->UniformU64(out.size()));
    const char ch = static_cast<char>('a' + rng->UniformU64(alphabet));
    if (kind <= 1) {
      out[pos] = ch;  // substitution (2x weight)
    } else if (kind == 2) {
      out.insert(out.begin() + pos, ch);
    } else {
      out.erase(out.begin() + pos);
    }
  }
  return out;
}

}  // namespace data
}  // namespace genie
