#pragma once

/// \file points.h
/// Dense point datasets and their generators — the stand-ins for the
/// paper's OCR (1156-d, L1/Laplacian-kernel) and SIFT (128-d, L2) feature
/// collections (DESIGN.md §2). Points are drawn from labelled Gaussian
/// clusters so nearest-neighbour structure and classification labels
/// (Table V) exist by construction.

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace genie {
namespace data {

/// Row-major dense float matrix.
class PointMatrix {
 public:
  PointMatrix() = default;
  PointMatrix(uint32_t num_points, uint32_t dim)
      : num_points_(num_points), dim_(dim),
        values_(static_cast<size_t>(num_points) * dim) {}

  uint32_t num_points() const { return num_points_; }
  uint32_t dim() const { return dim_; }

  std::span<const float> row(uint32_t i) const {
    GENIE_DCHECK(i < num_points_);
    return std::span<const float>(values_).subspan(
        static_cast<size_t>(i) * dim_, dim_);
  }
  std::span<float> mutable_row(uint32_t i) {
    GENIE_DCHECK(i < num_points_);
    return std::span<float>(values_).subspan(static_cast<size_t>(i) * dim_,
                                             dim_);
  }
  std::span<const float> values() const { return values_; }

 private:
  uint32_t num_points_ = 0;
  uint32_t dim_ = 0;
  std::vector<float> values_;
};

/// L2 (Euclidean) distance.
double L2Distance(std::span<const float> a, std::span<const float> b);
/// L1 (Manhattan) distance.
double L1Distance(std::span<const float> a, std::span<const float> b);

/// Exhaustive k-nearest-neighbour ground truth (ids sorted by ascending
/// distance). `p` selects the metric: 1 or 2.
std::vector<uint32_t> BruteForceKnn(const PointMatrix& data,
                                    std::span<const float> query, uint32_t k,
                                    uint32_t p);

struct ClusteredPointsOptions {
  uint32_t num_points = 10000;
  uint32_t dim = 32;
  uint32_t num_clusters = 50;
  double cluster_stddev = 0.5;
  double center_range = 10.0;  // centers ~ U[-range, range]^dim
  uint64_t seed = 42;
};

struct ClusteredPoints {
  PointMatrix points;
  std::vector<uint32_t> labels;  // cluster id per point
  PointMatrix centers;
};

/// Gaussian mixture with uniformly placed centers; labels record the
/// generating cluster (used as the class label of the Table-V experiment).
ClusteredPoints MakeClusteredPoints(const ClusteredPointsOptions& options);

/// Draws `count` query points by perturbing random data points — mirroring
/// the paper's protocol of holding out data points as the query set.
PointMatrix MakeQueriesNear(const PointMatrix& data, uint32_t count,
                            double noise_stddev, uint64_t seed);

}  // namespace data
}  // namespace genie
