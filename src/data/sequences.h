#pragma once

/// \file sequences.h
/// Synthetic sequence data standing in for the DBLP title dataset
/// (DESIGN.md §2): random strings over a small alphabet plus the paper's
/// query protocol — take data sequences and modify a fraction of their
/// characters ("modify 20% of the characters of the sequences").

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace genie {
namespace data {

struct SequenceDatasetOptions {
  uint32_t num_sequences = 10000;
  uint32_t min_length = 30;
  uint32_t max_length = 50;
  uint32_t alphabet = 26;  // 'a' .. 'a'+alphabet-1
  uint64_t seed = 42;
};

std::vector<std::string> MakeSequences(const SequenceDatasetOptions& options);

/// Applies ceil(rate * |seq|) random edits (substitute/insert/delete in
/// ratio 2:1:1) — the modification protocol of Tables VI/VII.
std::string MutateSequence(const std::string& seq, double rate,
                           uint32_t alphabet, Rng* rng);

}  // namespace data
}  // namespace genie
