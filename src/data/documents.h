#pragma once

/// \file documents.h
/// Synthetic short documents standing in for the Tweets dataset (DESIGN.md
/// §2): token ids drawn from a Zipfian vocabulary (stop words removed in
/// the paper, so rank-0 mass is moderate), short lengths as in tweets.

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace genie {
namespace data {

using TokenDocument = std::vector<uint32_t>;

struct DocumentDatasetOptions {
  uint32_t num_documents = 10000;
  uint32_t vocabulary = 20000;
  double zipf_exponent = 1.05;
  uint32_t min_tokens = 5;
  uint32_t max_tokens = 16;
  uint64_t seed = 42;
};

std::vector<TokenDocument> MakeDocuments(
    const DocumentDatasetOptions& options);

/// Query protocol: sample existing documents and randomly replace a
/// fraction of their tokens, mirroring held-out tweets.
std::vector<TokenDocument> MakeDocumentQueries(
    const std::vector<TokenDocument>& docs, uint32_t count,
    double replace_rate, uint32_t vocabulary, double zipf_exponent,
    uint64_t seed);

}  // namespace data
}  // namespace genie
