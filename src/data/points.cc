#include "data/points.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace genie {
namespace data {

double L2Distance(std::span<const float> a, std::span<const float> b) {
  GENIE_DCHECK(a.size() == b.size());
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double L1Distance(std::span<const float> a, std::span<const float> b) {
  GENIE_DCHECK(a.size() == b.size());
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return acc;
}

std::vector<uint32_t> BruteForceKnn(const PointMatrix& data,
                                    std::span<const float> query, uint32_t k,
                                    uint32_t p) {
  std::vector<uint32_t> ids(data.num_points());
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<double> dist(data.num_points());
  for (uint32_t i = 0; i < data.num_points(); ++i) {
    dist[i] = p == 1 ? L1Distance(data.row(i), query)
                     : L2Distance(data.row(i), query);
  }
  const uint32_t kk = std::min<uint32_t>(k, data.num_points());
  std::partial_sort(ids.begin(), ids.begin() + kk, ids.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return a < b;
                    });
  ids.resize(kk);
  return ids;
}

ClusteredPoints MakeClusteredPoints(const ClusteredPointsOptions& options) {
  GENIE_CHECK(options.num_clusters >= 1 && options.dim >= 1);
  Rng rng(options.seed);
  ClusteredPoints out;
  out.centers = PointMatrix(options.num_clusters, options.dim);
  for (uint32_t c = 0; c < options.num_clusters; ++c) {
    auto row = out.centers.mutable_row(c);
    for (auto& v : row) {
      v = static_cast<float>(
          rng.UniformDouble(-options.center_range, options.center_range));
    }
  }
  out.points = PointMatrix(options.num_points, options.dim);
  out.labels.resize(options.num_points);
  for (uint32_t i = 0; i < options.num_points; ++i) {
    const uint32_t c =
        static_cast<uint32_t>(rng.UniformU64(options.num_clusters));
    out.labels[i] = c;
    auto center = out.centers.row(c);
    auto row = out.points.mutable_row(i);
    for (uint32_t d = 0; d < options.dim; ++d) {
      row[d] = center[d] +
               static_cast<float>(rng.Gaussian(0.0, options.cluster_stddev));
    }
  }
  return out;
}

PointMatrix MakeQueriesNear(const PointMatrix& data, uint32_t count,
                            double noise_stddev, uint64_t seed) {
  GENIE_CHECK(data.num_points() > 0);
  Rng rng(seed);
  PointMatrix queries(count, data.dim());
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t src =
        static_cast<uint32_t>(rng.UniformU64(data.num_points()));
    auto from = data.row(src);
    auto to = queries.mutable_row(i);
    for (uint32_t d = 0; d < data.dim(); ++d) {
      to[d] = from[d] + static_cast<float>(rng.Gaussian(0.0, noise_stddev));
    }
  }
  return queries;
}

}  // namespace data
}  // namespace genie
