#include "data/relational_data.h"

#include <algorithm>

#include "common/logging.h"

namespace genie {
namespace data {

sa::RelationalTable MakeRelationalTable(
    const RelationalDatasetOptions& options) {
  GENIE_CHECK(options.numeric_columns + options.categorical_columns >= 1);
  Rng rng(options.seed);
  std::vector<std::vector<uint32_t>> columns;
  std::vector<uint32_t> cardinalities;

  for (uint32_t c = 0; c < options.numeric_columns; ++c) {
    std::vector<uint32_t> col(options.num_rows);
    // Gaussian-ish numeric attribute discretized over the bucket range.
    const double mean = options.numeric_buckets / 2.0;
    const double stddev = options.numeric_buckets / 8.0;
    for (auto& v : col) {
      const double x = rng.Gaussian(mean, stddev);
      v = static_cast<uint32_t>(std::clamp(
          x, 0.0, static_cast<double>(options.numeric_buckets - 1)));
    }
    columns.push_back(std::move(col));
    cardinalities.push_back(options.numeric_buckets);
  }
  for (uint32_t c = 0; c < options.categorical_columns; ++c) {
    ZipfSampler zipf(options.categorical_cardinality,
                     options.categorical_skew);
    std::vector<uint32_t> col(options.num_rows);
    for (auto& v : col) v = static_cast<uint32_t>(zipf.Sample(&rng));
    columns.push_back(std::move(col));
    cardinalities.push_back(options.categorical_cardinality);
  }
  return sa::RelationalTable(std::move(columns), std::move(cardinalities));
}

std::vector<sa::RangeQuery> MakeRangeQueries(const sa::RelationalTable& table,
                                             uint32_t count,
                                             uint32_t numeric_columns,
                                             uint32_t numeric_halfwidth,
                                             uint64_t seed) {
  GENIE_CHECK(table.num_rows() > 0);
  Rng rng(seed);
  std::vector<sa::RangeQuery> queries(count);
  for (auto& query : queries) {
    const uint32_t row =
        static_cast<uint32_t>(rng.UniformU64(table.num_rows()));
    for (uint32_t col = 0; col < table.num_columns(); ++col) {
      const uint32_t v = table.value(row, col);
      if (col < numeric_columns) {
        const uint32_t lo = v > numeric_halfwidth ? v - numeric_halfwidth : 0;
        const uint32_t hi =
            std::min(v + numeric_halfwidth, table.cardinality(col) - 1);
        query.Add(col, lo, hi);
      } else {
        query.Add(col, v, v);
      }
    }
  }
  return queries;
}

std::vector<sa::RangeQuery> MakeExactMatchQueries(
    const sa::RelationalTable& table, uint32_t count, uint64_t seed) {
  return MakeRangeQueries(table, count, /*numeric_columns=*/0,
                          /*numeric_halfwidth=*/0, seed);
}

}  // namespace data
}  // namespace genie
