#include "data/documents.h"

#include "common/logging.h"

namespace genie {
namespace data {

std::vector<TokenDocument> MakeDocuments(
    const DocumentDatasetOptions& options) {
  GENIE_CHECK(options.vocabulary >= 2);
  GENIE_CHECK(options.min_tokens >= 1 &&
              options.min_tokens <= options.max_tokens);
  Rng rng(options.seed);
  ZipfSampler zipf(options.vocabulary, options.zipf_exponent);
  std::vector<TokenDocument> docs(options.num_documents);
  for (auto& doc : docs) {
    const uint32_t len = static_cast<uint32_t>(
        rng.UniformInt(options.min_tokens, options.max_tokens));
    doc.resize(len);
    for (auto& t : doc) t = static_cast<uint32_t>(zipf.Sample(&rng));
  }
  return docs;
}

std::vector<TokenDocument> MakeDocumentQueries(
    const std::vector<TokenDocument>& docs, uint32_t count,
    double replace_rate, uint32_t vocabulary, double zipf_exponent,
    uint64_t seed) {
  GENIE_CHECK(!docs.empty());
  Rng rng(seed);
  ZipfSampler zipf(vocabulary, zipf_exponent);
  std::vector<TokenDocument> queries(count);
  for (auto& q : queries) {
    q = docs[rng.UniformU64(docs.size())];
    for (auto& t : q) {
      if (rng.Bernoulli(replace_rate)) {
        t = static_cast<uint32_t>(zipf.Sample(&rng));
      }
    }
  }
  return queries;
}

}  // namespace data
}  // namespace genie
