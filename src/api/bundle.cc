/// \file bundle.cc
/// Engine bundle persistence: Engine::Save / Engine::Open. A bundle is a
/// versioned container holding everything a process needs to answer
/// queries identically to the engine that was saved — the modality's
/// query-side state (meta blob) plus the serialized inverted index — so
/// serving hosts skip the offline index build entirely (the paper treats
/// construction as a one-time cost; this file makes that workflow real
/// through the facade).
///
/// Container format v1 (little-endian):
///   magic "GNIEBNDL" | u32 format_version | u32 modality tag
///   | u64 meta_bytes  | meta blob (modality-specific, serialize.h)
///   | u64 index_bytes | index stream (exact SaveIndex/SaveIndexCompressed
///                       image, so the bounds-checked LoadIndex path is
///                       reused verbatim)
///   | u64 checksum (chunked murmur3 over all preceding bytes)
///
/// Format v2 adds one section between the meta blob and the index stream:
///   | u64 mutation_bytes | mutation blob (delta segment manifest +
///                          tombstone log + appended side data)
///
/// Format v3 makes the mutation section unconditional (0 bytes on a frozen
/// engine) and adds the planner's index statistics behind it:
///   | u64 stats_bytes | stats blob (IndexStats: shape fingerprint,
///                       postings-volume histogram, keyword fan-out)
/// so a reopened engine plans without re-scanning the index. Every save now
/// writes v3; v1 and v2 bundles keep opening forever (their stats are
/// recomputed at open). See docs/FORMATS.md for the exact blob layouts.
///
/// Save writes to `path + ".tmp"` and atomically renames over `path`, so a
/// crash mid-save leaves the previous bundle intact — Open never sees a
/// half-written file (and the trailing checksum would reject one anyway).
///
/// The trailing whole-file checksum makes corruption detection exact:
/// every single-byte flip and every truncation fails with InvalidArgument
/// before any section is parsed (the index stream's own checksum and the
/// bounds checks remain as defense in depth behind it).

#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "api/engine.h"
#include "api/searcher.h"
#include "common/file_util.h"
#include "common/serialize.h"
#include "index/index_io.h"
#include "lsh/murmur3.h"
#include "plan/index_stats.h"

namespace genie {

namespace {

constexpr char kBundleMagic[8] = {'G', 'N', 'I', 'E', 'B', 'N', 'D', 'L'};
/// v1: frozen engine. v2: adds the mutation section (delta segments +
/// tombstones + appended side data). v3: mutation section unconditional +
/// persisted IndexStats. Saves always write the current version.
constexpr uint32_t kBundleVersionFrozen = 1;
constexpr uint32_t kBundleVersionMutable = 2;
constexpr uint32_t kBundleVersionStats = 3;
/// magic + version + modality + meta_bytes + index_bytes + checksum.
constexpr uint64_t kMinBundleBytes = 8 + 4 + 4 + 8 + 8 + 8;

using file_util::FileBytes;
using file_util::FilePtr;

/// Rolling murmur3 over fixed 64 KiB blocks, so the digest is independent
/// of how the byte stream is segmented across Update calls (Save hashes
/// in-memory sections, Open hashes the file in read chunks).
class ChunkedHasher {
 public:
  void Update(const char* data, size_t len) {
    while (len > 0) {
      const size_t take = std::min(len, kBlock - fill_);
      std::memcpy(block_ + fill_, data, take);
      fill_ += take;
      data += take;
      len -= take;
      if (fill_ == kBlock) Flush();
    }
  }

  uint64_t Finish() {
    if (fill_ > 0) Flush();
    const uint64_t total = total_;
    return lsh::Murmur3_64(&total, sizeof(total), digest_);
  }

 private:
  void Flush() {
    digest_ = lsh::Murmur3_64(block_, fill_, digest_);
    total_ += fill_;
    fill_ = 0;
  }

  static constexpr size_t kBlock = 64 * 1024;
  char block_[kBlock];
  size_t fill_ = 0;
  uint64_t total_ = 0;
  uint64_t digest_ = 0x474E4942444C3156ULL;  // "GNIBDL1V"
};

/// Stable on-disk modality tags (independent of the enum's layout).
Result<uint32_t> ModalityTag(Modality modality) {
  switch (modality) {
    case Modality::kPoints: return uint32_t{0};
    case Modality::kSets: return uint32_t{1};
    case Modality::kSequences: return uint32_t{2};
    case Modality::kDocuments: return uint32_t{3};
    case Modality::kRelational: return uint32_t{4};
    case Modality::kCompiled: return uint32_t{5};
  }
  return Status::Internal("unknown modality");
}

Result<Modality> TagModality(uint32_t tag) {
  switch (tag) {
    case 0: return Modality::kPoints;
    case 1: return Modality::kSets;
    case 2: return Modality::kSequences;
    case 3: return Modality::kDocuments;
    case 4: return Modality::kRelational;
    case 5: return Modality::kCompiled;
  }
  return Status::InvalidArgument("unknown modality tag in bundle");
}

template <typename T>
Status ReadPod(std::FILE* f, T* v, const std::string& path) {
  if (!file_util::ReadPod(f, v)) {
    return Status::InvalidArgument("truncated bundle: " + path);
  }
  return Status::OK();
}

/// Verifies the trailing whole-file checksum by streaming the first
/// `file_bytes - 8` bytes, then rewinds to the start.
Status VerifyBundleChecksum(std::FILE* f, uint64_t file_bytes,
                            const std::string& path) {
  ChunkedHasher hasher;
  char buffer[64 * 1024];
  uint64_t left = file_bytes - sizeof(uint64_t);
  while (left > 0) {
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(left, sizeof(buffer)));
    if (std::fread(buffer, 1, take, f) != take) {
      return Status::InvalidArgument("truncated bundle: " + path);
    }
    hasher.Update(buffer, take);
    left -= take;
  }
  uint64_t stored = 0;
  GENIE_RETURN_NOT_OK(ReadPod(f, &stored, path));
  if (stored != hasher.Finish()) {
    return Status::InvalidArgument("bundle checksum mismatch (corrupted): " +
                                   path);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  return Status::OK();
}

}  // namespace

Status Engine::Save(const std::string& path,
                    const BundleSaveOptions& options) const {
  // Freeze the mutation state for the whole save (a no-op guard on a
  // never-mutated engine): the meta, mutation, and index sections must be
  // one consistent cut, and a compaction commit must not swap the index
  // out from under BundleIndex(). Searches keep running throughout.
  const std::shared_ptr<void> pause = searcher_->PauseMutation();
  const InvertedIndex* index = searcher_->BundleIndex();
  if (index == nullptr) {
    return Status::Unimplemented("this engine does not support Save");
  }
  serialize::Writer meta;
  GENIE_RETURN_NOT_OK(searcher_->SerializeBundleMeta(&meta));
  serialize::Writer mutation;
  GENIE_RETURN_NOT_OK(searcher_->SerializeMutationState(&mutation));
  std::string index_bytes;
  GENIE_RETURN_NOT_OK(
      SaveIndexToBuffer(*index, options.compress_postings, &index_bytes));
  GENIE_ASSIGN_OR_RETURN(const uint32_t modality_tag,
                         ModalityTag(searcher_->modality()));

  // Stats are recomputed from the exact index image being saved (not
  // copied from the live backend) so the persisted blob always fingerprints
  // the bundle's own index, even mid-mutation.
  serialize::Writer stats;
  plan::SerializeIndexStats(plan::ComputeIndexStats(*index), &stats);

  serialize::Writer head;
  head.Bytes(kBundleMagic, sizeof(kBundleMagic));
  head.U32(kBundleVersionStats);
  head.U32(modality_tag);
  head.U64(meta.data().size());
  head.Bytes(meta.data().data(), meta.data().size());
  // v3: the mutation section is always present — 0 bytes on a frozen
  // engine (Open only reopens the engine live when the blob is non-empty).
  head.U64(mutation.data().size());
  head.Bytes(mutation.data().data(), mutation.data().size());
  head.U64(stats.data().size());
  head.Bytes(stats.data().data(), stats.data().size());
  head.U64(index_bytes.size());

  ChunkedHasher hasher;
  hasher.Update(head.data().data(), head.data().size());
  hasher.Update(index_bytes.data(), index_bytes.size());
  const uint64_t checksum = hasher.Finish();
  const std::string_view checksum_bytes(
      reinterpret_cast<const char*>(&checksum), sizeof(checksum));

  // Write-then-rename: a crash mid-write leaves `path` untouched (either
  // the previous bundle or nothing), never a torn file. When the target
  // exists but is not a regular file (a device like /dev/null, a FIFO),
  // renaming over it would replace the node — write through it directly
  // instead; atomicity only makes sense for regular files.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    return file_util::WriteFileChecked(path,
                                       {head.data(), index_bytes,
                                        checksum_bytes});
  }
  const std::string tmp = path + ".tmp";
  GENIE_RETURN_NOT_OK(file_util::WriteFileChecked(
      tmp, {head.data(), index_bytes, checksum_bytes}));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot atomically replace: " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::Open(const std::string& path,
                                             EngineConfig config) {
  GENIE_RETURN_NOT_OK(ValidateCommonKnobs(config));

  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  GENIE_ASSIGN_OR_RETURN(const uint64_t file_bytes, FileBytes(f.get(), path));
  if (file_bytes < kMinBundleBytes) {
    return Status::InvalidArgument("truncated bundle: " + path);
  }
  GENIE_RETURN_NOT_OK(VerifyBundleChecksum(f.get(), file_bytes, path));

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kBundleMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a GENIE bundle: " + path);
  }
  uint32_t version = 0;
  uint32_t modality_tag = 0;
  GENIE_RETURN_NOT_OK(ReadPod(f.get(), &version, path));
  if (version < kBundleVersionFrozen || version > kBundleVersionStats) {
    return Status::InvalidArgument(
        "unsupported bundle format version " + std::to_string(version) +
        ": " + path);
  }
  GENIE_RETURN_NOT_OK(ReadPod(f.get(), &modality_tag, path));
  GENIE_ASSIGN_OR_RETURN(const Modality modality, TagModality(modality_tag));

  // The config must re-bind the dataset the bundle was built from (the
  // factories validate its shape); compiled bundles carry their whole
  // state and take a binding-free config instead.
  if (modality == Modality::kCompiled) {
    if (config.has_modality()) {
      return Status::InvalidArgument(
          "a compiled bundle carries its own index; open it with a config "
          "that has no dataset binding");
    }
  } else if (!config.has_modality() || config.modality() != modality) {
    return Status::InvalidArgument(
        std::string("bundle holds a '") + ModalityToString(modality) +
        "' engine but the config binds '" +
        (config.has_modality() ? ModalityToString(config.modality())
                               : "nothing") +
        "': " + path);
  }

  uint64_t meta_bytes = 0;
  GENIE_RETURN_NOT_OK(ReadPod(f.get(), &meta_bytes, path));
  // Bytes left must still fit the later length fields and the checksum
  // (v2 adds a u64 for the mutation section, v3 another for the stats).
  const uint64_t header_end = 8 + 4 + 4 + 8;
  const uint64_t later_fields = (version >= kBundleVersionStats       ? 4
                                 : version >= kBundleVersionMutable   ? 3
                                                                      : 2) *
                                sizeof(uint64_t);
  if (meta_bytes > file_bytes - header_end - later_fields) {
    return Status::InvalidArgument("bundle meta exceeds file size: " + path);
  }
  std::string meta_blob(static_cast<size_t>(meta_bytes), '\0');
  if (meta_bytes != 0 &&
      std::fread(meta_blob.data(), 1, meta_blob.size(), f.get()) !=
          meta_blob.size()) {
    return Status::InvalidArgument("truncated bundle: " + path);
  }

  std::string mutation_blob;
  if (version >= kBundleVersionMutable) {
    uint64_t mutation_bytes = 0;
    GENIE_RETURN_NOT_OK(ReadPod(f.get(), &mutation_bytes, path));
    const long pos = std::ftell(f.get());
    if (pos < 0) {
      return Status::Internal("cannot determine read position: " + path);
    }
    const uint64_t fields_after_mutation =
        (version >= kBundleVersionStats ? 3 : 2) * sizeof(uint64_t);
    if (mutation_bytes >
        file_bytes - static_cast<uint64_t>(pos) - fields_after_mutation) {
      return Status::InvalidArgument(
          "bundle mutation section exceeds file size: " + path);
    }
    mutation_blob.resize(static_cast<size_t>(mutation_bytes));
    if (mutation_bytes != 0 &&
        std::fread(mutation_blob.data(), 1, mutation_blob.size(), f.get()) !=
            mutation_blob.size()) {
      return Status::InvalidArgument("truncated bundle: " + path);
    }
  }

  // v3: persisted planner statistics. Deserialization is strict — the
  // whole-file checksum already passed, so a malformed blob means a buggy
  // writer, not bit rot.
  plan::IndexStats stats;
  bool have_stats = false;
  if (version >= kBundleVersionStats) {
    uint64_t stats_bytes = 0;
    GENIE_RETURN_NOT_OK(ReadPod(f.get(), &stats_bytes, path));
    const long pos = std::ftell(f.get());
    if (pos < 0) {
      return Status::Internal("cannot determine read position: " + path);
    }
    if (stats_bytes >
        file_bytes - static_cast<uint64_t>(pos) - 2 * sizeof(uint64_t)) {
      return Status::InvalidArgument(
          "bundle stats section exceeds file size: " + path);
    }
    std::string stats_blob(static_cast<size_t>(stats_bytes), '\0');
    if (stats_bytes != 0 &&
        std::fread(stats_blob.data(), 1, stats_blob.size(), f.get()) !=
            stats_blob.size()) {
      return Status::InvalidArgument("truncated bundle: " + path);
    }
    serialize::Reader stats_reader(stats_blob);
    GENIE_RETURN_NOT_OK(plan::DeserializeIndexStats(&stats_reader, &stats));
    have_stats = true;
  }

  uint64_t index_bytes = 0;
  GENIE_RETURN_NOT_OK(ReadPod(f.get(), &index_bytes, path));
  const long index_start = std::ftell(f.get());
  if (index_start < 0) {
    return Status::Internal("cannot determine read position: " + path);
  }
  // The index stream must account for exactly the bytes between here and
  // the trailing checksum.
  if (index_bytes !=
      file_bytes - static_cast<uint64_t>(index_start) - sizeof(uint64_t)) {
    return Status::InvalidArgument("bundle index section size mismatch: " +
                                   path);
  }
  GENIE_ASSIGN_OR_RETURN(
      InvertedIndex index,
      LoadIndexFromStream(f.get(),
                          static_cast<uint64_t>(index_start) + index_bytes,
                          path));

  serialize::Reader meta(meta_blob);
  serialize::Reader mutation_reader(mutation_blob);
  // v3 always carries the section but an empty blob means a frozen engine
  // (same as a v1 bundle): only a non-empty blob reopens the engine live.
  serialize::Reader* mutation =
      !mutation_blob.empty() ? &mutation_reader : nullptr;
  const plan::IndexStats* stats_ptr = have_stats ? &stats : nullptr;
  Result<std::unique_ptr<Searcher>> searcher = [&] {
    switch (modality) {
      case Modality::kPoints:
        return OpenPointsSearcher(config, &meta, mutation, std::move(index),
                                  stats_ptr);
      case Modality::kSets:
        return OpenSetsSearcher(config, &meta, mutation, std::move(index),
                                stats_ptr);
      case Modality::kSequences:
        return OpenSequencesSearcher(config, &meta, mutation,
                                     std::move(index), stats_ptr);
      case Modality::kDocuments:
        return OpenDocumentsSearcher(config, &meta, mutation,
                                     std::move(index), stats_ptr);
      case Modality::kRelational:
        return OpenRelationalSearcher(config, &meta, mutation,
                                      std::move(index), stats_ptr);
      case Modality::kCompiled:
        return OpenCompiledSearcher(config, &meta, mutation,
                                    std::move(index), stats_ptr);
    }
    return Result<std::unique_ptr<Searcher>>(
        Status::InvalidArgument("unknown modality tag in bundle"));
  }();
  if (!searcher.ok()) return searcher.status();
  return std::unique_ptr<Engine>(
      new Engine(std::move(config), std::move(searcher).ValueOrDie()));
}

}  // namespace genie
