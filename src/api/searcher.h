#pragma once

/// \file searcher.h
/// The polymorphic searcher seam of the facade: one implementation per
/// modality, each wrapping its domain searcher (LshSearcher, SetLshSearcher,
/// SequenceSearcher, DocumentSearcher, RelationalSearcher) or the raw
/// EngineBackend (compiled queries), all behind factory functions keyed by
/// EngineConfig. genie::Engine holds exactly one of these.

#include <memory>

#include "api/engine.h"
#include "api/types.h"
#include "common/result.h"
#include "common/serialize.h"
#include "index/inverted_index.h"
#include "plan/index_stats.h"

namespace genie {

/// Modality-erased search over one indexed dataset.
class Searcher {
 public:
  virtual ~Searcher() = default;

  virtual Modality modality() const = 0;
  virtual uint32_t num_objects() const = 0;

  /// Answers one batch; the request's payload kind has already been
  /// validated by Engine::Search. Implementations must be thread-safe: the
  /// facade does not serialize Search calls. Each implementation holds its
  /// own mutex around exactly the backend execution and its profile-delta
  /// bookkeeping, and shapes results outside that critical section so
  /// concurrent callers overlap host work with device work. Implemented as
  /// ExecutePrepared(PrepareChunk(request)), so the blocking and pipelined
  /// paths share one code path and stay byte-identical.
  virtual Result<SearchResult> Search(const SearchRequest& request) = 0;

  /// One chunk of a pipelined stream, prepared ahead of execution. Holds
  /// the chunk's compiled queries and its device staging memory; dropping
  /// an unexecuted chunk (cancellation) releases both.
  struct PreparedChunk {
    virtual ~PreparedChunk() = default;
    /// The sliced request this chunk answers. Payload spans are borrowed:
    /// the facade keeps the backing request (and any materialized points
    /// slice) alive until ExecutePrepared returns or the chunk is dropped.
    SearchRequest request;
  };

  /// Prepare stage of the pipelined SearchStream: the modality's query
  /// transform plus backend staging, deliberately outside the execute
  /// critical section — the facade runs PrepareChunk(chunk k+1)
  /// concurrently with ExecutePrepared(chunk k) on this searcher.
  virtual Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) = 0;

  /// Execute stage: answers a prepared chunk, with results identical to
  /// Search(chunk->request).
  virtual Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) = 0;

  /// Queries per stream chunk derived from the free device memory, for
  /// SearchStream's chunk_size = 0 mode. 0 = no modality-specific
  /// derivation (the facade falls back to its 1024 default).
  virtual uint32_t DeriveChunkSize(const SearchRequest& request,
                                   double memory_fraction) const {
    (void)request;
    (void)memory_fraction;
    return 0;
  }

  /// Bundle persistence (Engine::Save): writes the modality-specific
  /// query-side state — LSH family coefficients + re-hash seeds, n-gram
  /// vocabulary, token universe, column layout — that a reopened engine
  /// needs to compile queries exactly like this one. Default: this
  /// searcher cannot be persisted.
  virtual Status SerializeBundleMeta(serialize::Writer* writer) const {
    (void)writer;
    return Status::Unimplemented("this engine does not support Save");
  }

  /// The inverted index Engine::Save embeds in the bundle; nullptr when
  /// the searcher cannot be persisted. For mutated engines this is the
  /// backend's current (possibly compacted) index — call under
  /// PauseMutation so a compaction commit cannot swap it mid-save.
  virtual const InvertedIndex* BundleIndex() const { return nullptr; }

  // --- Live mutation (Engine::Insert / Remove / Flush). --------------------

  /// Inserts a batch (payload kind already validated); returns assigned
  /// ids. Default: the modality does not support mutation.
  virtual Result<std::vector<ObjectId>> Insert(const InsertRequest& request) {
    (void)request;
    return Status::Unimplemented("this engine does not support Insert");
  }

  /// Tombstones ids. Default: the modality does not support mutation.
  virtual Status Remove(std::span<const ObjectId> ids) {
    (void)ids;
    return Status::Unimplemented("this engine does not support Remove");
  }

  /// Synchronous compaction barrier; a no-op on never-mutated engines.
  virtual Status Flush() { return Status::OK(); }

  virtual MutationStats mutation_stats() const { return {}; }

  /// Planner report of the wrapped backend (Engine::ExplainPlan). Default:
  /// the searcher has no planning backend.
  virtual std::string ExplainPlan() const { return "planner: unavailable"; }

  /// Stream chunk size the backend's ExecutionPlan recommends; 0 when no
  /// plan is live (planner off, legacy path). Second step of SearchStream's
  /// chunk_size = 0 fallback chain, between the modality derivation and
  /// the fixed 1024 default.
  virtual uint32_t PlannedChunkSize() const { return 0; }

  /// Monotone counter of answer-changing index mutations (Insert / Remove /
  /// the compaction hot-swap), from EngineBackend::data_generation. The
  /// serving layer's ResultCache keys entries on it so a cached answer is
  /// never served across a mutation. Internal tier switches do not bump it
  /// — they change the schedule, not the answers.
  virtual uint64_t DataGeneration() const { return 0; }

  /// Stops mutations and compaction commits while the returned guard
  /// lives (nullptr when the engine was never mutated — nothing to
  /// pause). Engine::Save holds this across the (meta, mutation, index)
  /// serialization so the triple is consistent.
  virtual std::shared_ptr<void> PauseMutation() { return nullptr; }

  /// GNIEBNDL v2 mutation section (segment manifest + tombstone log +
  /// appended side data). Writing nothing means the bundle stays v1 —
  /// exactly the frozen-engine format.
  virtual Status SerializeMutationState(serialize::Writer* writer) const {
    (void)writer;
    return Status::OK();
  }
};

/// Factory per modality; each reads its dataset binding and knobs from the
/// config (which Engine::Create has validated).
Result<std::unique_ptr<Searcher>> MakePointsSearcher(const EngineConfig& config);
Result<std::unique_ptr<Searcher>> MakeSetsSearcher(const EngineConfig& config);
Result<std::unique_ptr<Searcher>> MakeSequencesSearcher(
    const EngineConfig& config);
Result<std::unique_ptr<Searcher>> MakeDocumentsSearcher(
    const EngineConfig& config);
Result<std::unique_ptr<Searcher>> MakeRelationalSearcher(
    const EngineConfig& config);
Result<std::unique_ptr<Searcher>> MakeCompiledSearcher(
    const EngineConfig& config);

/// Bundle-open factories (Engine::Open): reassemble a modality searcher
/// from the bundle's deserialized meta state + loaded index, re-binding the
/// config's dataset for re-ranking / verification. Each factory consumes
/// the whole meta blob (trailing bytes are InvalidArgument) and validates
/// the rebound dataset against the saved shape. `mutation` is the GNIEBNDL
/// v2 mutation section (delta segments + tombstone log + appended side
/// data) or nullptr for a v1 bundle; when present the factory consumes it
/// fully and reopens the engine live, with the saved delta state adopted.
/// `stats` is the bundle's persisted IndexStats (GNIEBNDL v3) or nullptr
/// for older bundles — borrowed only for the call; when present and still
/// matching the loaded index, the backend skips its stats pass.
Result<std::unique_ptr<Searcher>> OpenPointsSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats = nullptr);
Result<std::unique_ptr<Searcher>> OpenSetsSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats = nullptr);
Result<std::unique_ptr<Searcher>> OpenSequencesSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats = nullptr);
Result<std::unique_ptr<Searcher>> OpenDocumentsSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats = nullptr);
Result<std::unique_ptr<Searcher>> OpenRelationalSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats = nullptr);
Result<std::unique_ptr<Searcher>> OpenCompiledSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats = nullptr);

}  // namespace genie
