#pragma once

/// \file genie.h
/// Umbrella header of the GENIE public API. Most programs need only this:
///
///   #include "api/genie.h"
///
///   auto engine = genie::Engine::Create(
///       genie::EngineConfig().Table(&table).K(5));
///   auto result = (*engine)->Search(genie::SearchRequest::Ranges(batch));
///
/// The facade serves all the paper's workloads — tau-ANN on dense vectors,
/// set similarity, sequence edit distance, document inner product and
/// relational top-k selection — through one Engine / SearchRequest /
/// SearchResult contract, with automatic single-load vs multiple-loading
/// backend selection. The domain layers below (lsh::*, sa::*, core::*)
/// remain public for callers that need the unwrapped machinery.

#include "api/engine.h"
#include "api/searcher.h"
#include "api/types.h"

// Supporting vocabulary commonly needed alongside the facade: status
// handling, LSH theory helpers (sizing m), and the LSH families that can be
// plugged into EngineConfig::VectorFamily / SetFamily.
#include "common/result.h"
#include "common/status.h"
#include "lsh/e2lsh.h"
#include "lsh/min_hash.h"
#include "lsh/random_binning.h"
#include "lsh/sim_hash.h"
#include "lsh/tau_ann.h"
