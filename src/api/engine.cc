#include "api/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "api/searcher.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "serve/request_scheduler.h"

namespace genie {

namespace {

constexpr uint32_t kDefaultStreamChunk = 1024;

/// Sub-request over queries [offset, offset + count). Span payloads are
/// sliced in place; the points payload is materialized into `scratch`
/// (PointMatrix has no row-range view) — a copy of chunk_size * dim floats,
/// negligible beside the search itself.
using SteadyClock = std::chrono::steady_clock;

/// Seconds two wall-clock intervals genuinely overlapped.
double IntervalOverlapSeconds(SteadyClock::time_point a_start,
                              SteadyClock::time_point a_end,
                              SteadyClock::time_point b_start,
                              SteadyClock::time_point b_end) {
  const auto start = std::max(a_start, b_start);
  const auto end = std::min(a_end, b_end);
  if (end <= start) return 0;
  return std::chrono::duration<double>(end - start).count();
}

SearchRequest SliceRequest(const SearchRequest& request, size_t offset,
                           size_t count, data::PointMatrix* scratch) {
  SearchRequest chunk = request;
  switch (request.modality) {
    case Modality::kPoints: {
      *scratch = data::PointMatrix(static_cast<uint32_t>(count),
                                   request.points->dim());
      for (size_t i = 0; i < count; ++i) {
        const auto from =
            request.points->row(static_cast<uint32_t>(offset + i));
        std::copy(from.begin(), from.end(),
                  scratch->mutable_row(static_cast<uint32_t>(i)).begin());
      }
      chunk.points = scratch;
      break;
    }
    case Modality::kSets:
      chunk.sets = request.sets.subspan(offset, count);
      break;
    case Modality::kSequences:
      chunk.sequences = request.sequences.subspan(offset, count);
      break;
    case Modality::kDocuments:
      chunk.documents = request.documents.subspan(offset, count);
      break;
    case Modality::kRelational:
      chunk.ranges = request.ranges.subspan(offset, count);
      break;
    case Modality::kCompiled:
      chunk.compiled = request.compiled.subspan(offset, count);
      break;
  }
  return chunk;
}

}  // namespace

const char* ModalityToString(Modality modality) {
  switch (modality) {
    case Modality::kPoints: return "points";
    case Modality::kSets: return "sets";
    case Modality::kSequences: return "sequences";
    case Modality::kDocuments: return "documents";
    case Modality::kRelational: return "relational";
    case Modality::kCompiled: return "compiled";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SearchRequest
// ---------------------------------------------------------------------------

SearchRequest SearchRequest::Points(const data::PointMatrix& queries) {
  SearchRequest request;
  request.modality = Modality::kPoints;
  request.points = &queries;
  return request;
}

SearchRequest SearchRequest::Sets(
    std::span<const std::vector<uint32_t>> queries) {
  SearchRequest request;
  request.modality = Modality::kSets;
  request.sets = queries;
  return request;
}

SearchRequest SearchRequest::Sequences(std::span<const std::string> queries) {
  SearchRequest request;
  request.modality = Modality::kSequences;
  request.sequences = queries;
  return request;
}

SearchRequest SearchRequest::Documents(
    std::span<const std::vector<uint32_t>> queries) {
  SearchRequest request;
  request.modality = Modality::kDocuments;
  request.documents = queries;
  return request;
}

SearchRequest SearchRequest::Ranges(std::span<const sa::RangeQuery> queries) {
  SearchRequest request;
  request.modality = Modality::kRelational;
  request.ranges = queries;
  return request;
}

SearchRequest SearchRequest::Compiled(std::span<const Query> queries) {
  SearchRequest request;
  request.modality = Modality::kCompiled;
  request.compiled = queries;
  return request;
}

size_t SearchRequest::num_queries() const {
  switch (modality) {
    case Modality::kPoints: return points != nullptr ? points->num_points() : 0;
    case Modality::kSets: return sets.size();
    case Modality::kSequences: return sequences.size();
    case Modality::kDocuments: return documents.size();
    case Modality::kRelational: return ranges.size();
    case Modality::kCompiled: return compiled.size();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// InsertRequest
// ---------------------------------------------------------------------------

InsertRequest InsertRequest::Points(const data::PointMatrix& objects) {
  InsertRequest request;
  request.modality = Modality::kPoints;
  request.points = &objects;
  return request;
}

InsertRequest InsertRequest::Sets(
    std::span<const std::vector<uint32_t>> objects) {
  InsertRequest request;
  request.modality = Modality::kSets;
  request.sets = objects;
  return request;
}

InsertRequest InsertRequest::Sequences(std::span<const std::string> objects) {
  InsertRequest request;
  request.modality = Modality::kSequences;
  request.sequences = objects;
  return request;
}

InsertRequest InsertRequest::Documents(
    std::span<const std::vector<uint32_t>> objects) {
  InsertRequest request;
  request.modality = Modality::kDocuments;
  request.documents = objects;
  return request;
}

InsertRequest InsertRequest::Rows(
    std::span<const std::vector<uint32_t>> rows) {
  InsertRequest request;
  request.modality = Modality::kRelational;
  request.rows = rows;
  return request;
}

InsertRequest InsertRequest::Objects(
    std::span<const std::vector<Keyword>> objects) {
  InsertRequest request;
  request.modality = Modality::kCompiled;
  request.objects = objects;
  return request;
}

size_t InsertRequest::num_objects() const {
  switch (modality) {
    case Modality::kPoints: return points != nullptr ? points->num_points() : 0;
    case Modality::kSets: return sets.size();
    case Modality::kSequences: return sequences.size();
    case Modality::kDocuments: return documents.size();
    case Modality::kRelational: return rows.size();
    case Modality::kCompiled: return objects.size();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// EngineConfig
// ---------------------------------------------------------------------------

EngineConfig& EngineConfig::Bind(Modality modality) {
  has_modality_ = true;
  modality_ = modality;
  return *this;
}

EngineConfig& EngineConfig::Points(const data::PointMatrix* points) {
  points_ = points;
  return Bind(Modality::kPoints);
}
EngineConfig& EngineConfig::Sets(
    const std::vector<std::vector<uint32_t>>* sets) {
  sets_ = sets;
  return Bind(Modality::kSets);
}
EngineConfig& EngineConfig::Sequences(
    const std::vector<std::string>* sequences) {
  sequences_ = sequences;
  return Bind(Modality::kSequences);
}
EngineConfig& EngineConfig::Documents(
    const std::vector<std::vector<uint32_t>>* documents) {
  documents_ = documents;
  return Bind(Modality::kDocuments);
}
EngineConfig& EngineConfig::Table(const sa::RelationalTable* table) {
  table_ = table;
  return Bind(Modality::kRelational);
}
EngineConfig& EngineConfig::Index(const InvertedIndex* index) {
  index_ = index;
  return Bind(Modality::kCompiled);
}

EngineConfig& EngineConfig::K(uint32_t k) {
  k_ = k;
  return *this;
}
EngineConfig& EngineConfig::CandidateK(uint32_t candidate_k) {
  candidate_k_ = candidate_k;
  return *this;
}
EngineConfig& EngineConfig::Selector(SelectorKind selector) {
  selector_ = selector;
  return *this;
}
EngineConfig& EngineConfig::Device(sim::Device* device) {
  device_ = device;
  return *this;
}
EngineConfig& EngineConfig::MaxCount(uint32_t max_count) {
  max_count_ = max_count;
  return *this;
}
EngineConfig& EngineConfig::MaxListLength(uint32_t max_list_length) {
  max_list_length_ = max_list_length;
  return *this;
}
EngineConfig& EngineConfig::BlockDim(uint32_t block_dim) {
  block_dim_ = block_dim;
  return *this;
}
EngineConfig& EngineConfig::MaxListsPerBlock(uint32_t max_lists) {
  max_lists_per_block_ = max_lists;
  return *this;
}
EngineConfig& EngineConfig::CollectHtStats(bool collect) {
  collect_ht_stats_ = collect;
  return *this;
}
EngineConfig& EngineConfig::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

EngineConfig& EngineConfig::VectorFamily(
    std::shared_ptr<const lsh::VectorLshFamily> family) {
  vector_family_ = std::move(family);
  return *this;
}
EngineConfig& EngineConfig::SetFamily(
    std::shared_ptr<const lsh::SetLshFamily> family) {
  set_family_ = std::move(family);
  return *this;
}
EngineConfig& EngineConfig::HashFunctions(uint32_t m) {
  hash_functions_ = m;
  return *this;
}
EngineConfig& EngineConfig::RehashDomain(uint32_t domain) {
  rehash_domain_ = domain;
  return *this;
}
EngineConfig& EngineConfig::MetricP(uint32_t p) {
  metric_p_ = p;
  return *this;
}
EngineConfig& EngineConfig::ExactRerank(bool rerank) {
  exact_rerank_ = rerank;
  return *this;
}

EngineConfig& EngineConfig::Ngram(uint32_t n) {
  ngram_ = n;
  return *this;
}
EngineConfig& EngineConfig::EscalateUntilExact(bool escalate) {
  escalate_until_exact_ = escalate;
  return *this;
}
EngineConfig& EngineConfig::MaxCandidateK(uint32_t max_candidate_k) {
  max_candidate_k_ = max_candidate_k;
  return *this;
}

EngineConfig& EngineConfig::DeltaSealThreshold(uint32_t objects) {
  delta_seal_threshold_ = objects;
  return *this;
}
EngineConfig& EngineConfig::AutoCompactSegments(uint32_t segments) {
  auto_compact_segments_ = segments;
  return *this;
}

EngineConfig& EngineConfig::AllowMultiLoad(bool allow) {
  allow_multi_load_ = allow;
  return *this;
}
EngineConfig& EngineConfig::MaxParts(uint32_t max_parts) {
  max_parts_ = max_parts;
  return *this;
}
EngineConfig& EngineConfig::ForceParts(uint32_t parts) {
  force_parts_ = parts;
  return *this;
}
EngineConfig& EngineConfig::Devices(uint32_t n) {
  num_devices_ = n;
  return *this;
}
EngineConfig& EngineConfig::UsePlanner(bool use) {
  use_planner_ = use;
  return *this;
}
EngineConfig& EngineConfig::Remote(net::RemoteOptions remote) {
  remote_ = std::move(remote);
  return *this;
}
EngineConfig& EngineConfig::Serving(ServingOptions options) {
  serving_enabled_ = true;
  serving_ = std::move(options);
  return *this;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Outlives the Engine via shared ownership with the async tasks, so the
/// destructor's wait and a finishing task never race on a dying mutex.
struct Engine::AsyncTracker {
  std::mutex mu;
  std::condition_variable cv;
  size_t inflight = 0;
};

Engine::Engine(EngineConfig config, std::unique_ptr<Searcher> searcher)
    : config_(std::move(config)), searcher_(std::move(searcher)),
      async_(std::make_shared<AsyncTracker>()) {
  if (config_.serving_enabled()) {
    scheduler_ = std::make_unique<serve::RequestScheduler>(searcher_.get(),
                                                           config_.serving());
  }
}

Engine::~Engine() {
  // A queued or running SearchAsync task dereferences this engine; freeing
  // it mid-stream would be a use-after-free. Block until they drain.
  std::unique_lock<std::mutex> lock(async_->mu);
  if (async_->inflight > 0) {
    // Waiting from a pool worker could starve the very tasks being waited
    // on (they need a free worker to start); fail loudly instead of
    // hanging. Resolve the futures before dropping the engine.
    GENIE_CHECK(!DefaultThreadPool()->InWorker())
        << "~Engine with outstanding SearchAsync work on a thread-pool "
           "worker would deadlock; wait on the futures first";
  }
  async_->cv.wait(lock, [this] { return async_->inflight == 0; });
}

Status Engine::ValidateCommonKnobs(const EngineConfig& config) {
  if (config.k() == 0) return Status::InvalidArgument("k must be >= 1");
  if (config.candidate_k() != 0 && config.candidate_k() < config.k()) {
    return Status::InvalidArgument("candidate_k must be >= k");
  }
  if (config.block_dim() == 0) {
    return Status::InvalidArgument("block_dim must be >= 1");
  }
  if (config.metric_p() != 1 && config.metric_p() != 2) {
    return Status::InvalidArgument("metric_p must be 1 or 2");
  }
  if (config.num_devices() == 0) {
    return Status::InvalidArgument("num_devices must be >= 1");
  }
  if (config.remote().enabled() && config.num_devices() > 1) {
    return Status::InvalidArgument(
        "Remote(endpoints) and Devices(n > 1) are mutually exclusive");
  }
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::Create(const EngineConfig& config) {
  if (!config.has_modality()) {
    return Status::InvalidArgument(
        "EngineConfig has no dataset binding; call one of Points / Sets / "
        "Sequences / Documents / Table / Index");
  }
  GENIE_RETURN_NOT_OK(ValidateCommonKnobs(config));

  Result<std::unique_ptr<Searcher>> searcher = [&] {
    switch (config.modality()) {
      case Modality::kPoints: return MakePointsSearcher(config);
      case Modality::kSets: return MakeSetsSearcher(config);
      case Modality::kSequences: return MakeSequencesSearcher(config);
      case Modality::kDocuments: return MakeDocumentsSearcher(config);
      case Modality::kRelational: return MakeRelationalSearcher(config);
      case Modality::kCompiled: return MakeCompiledSearcher(config);
    }
    return Result<std::unique_ptr<Searcher>>(
        Status::InvalidArgument("unknown modality"));
  }();
  if (!searcher.ok()) return searcher.status();
  return std::unique_ptr<Engine>(
      new Engine(config, std::move(searcher).ValueOrDie()));
}

Modality Engine::modality() const { return searcher_->modality(); }

uint32_t Engine::num_objects() const { return searcher_->num_objects(); }

Status Engine::ValidateRequest(const SearchRequest& request) const {
  if (request.modality != searcher_->modality()) {
    return Status::InvalidArgument(
        std::string("request payload is '") +
        ModalityToString(request.modality) + "' but the engine serves '" +
        ModalityToString(searcher_->modality()) + "'");
  }
  if (request.num_queries() == 0) {
    return Status::InvalidArgument("empty query batch");
  }
  if (request.modality == Modality::kPoints &&
      request.points->dim() != config_.points()->dim()) {
    return Status::InvalidArgument(
        "query dimension " + std::to_string(request.points->dim()) +
        " does not match dataset dimension " +
        std::to_string(config_.points()->dim()));
  }
  return Status::OK();
}

Result<SearchResult> Engine::Search(const SearchRequest& request) {
  GENIE_RETURN_NOT_OK(ValidateRequest(request));
  // Serving path: admit into the scheduler, which coalesces this call with
  // concurrent submissions (or answers it from the hot-query cache) and
  // blocks until the answer is demuxed back. Same answers, same Status
  // contract; only the schedule and the profile's serving fields differ.
  Result<SearchResult> result = scheduler_ != nullptr
                                    ? scheduler_->Submit(request)
                                    : searcher_->Search(request);
  if (result.ok()) {
    // Keep the cumulative overlap total monotonic across call types: a
    // blocking Search contributes no overlap but still reports the
    // engine-lifetime figure, like SearchStream does.
    result->cumulative.overlap_seconds = AddOverlapSeconds(0);
  }
  return result;
}

Status Engine::ValidateInsertRequest(const InsertRequest& request) const {
  if (request.modality != searcher_->modality()) {
    return Status::InvalidArgument(
        std::string("insert payload is '") +
        ModalityToString(request.modality) + "' but the engine serves '" +
        ModalityToString(searcher_->modality()) + "'");
  }
  if (request.num_objects() == 0) {
    return Status::InvalidArgument("empty insert batch");
  }
  if (request.modality == Modality::kPoints &&
      request.points->dim() != config_.points()->dim()) {
    return Status::InvalidArgument(
        "insert dimension " + std::to_string(request.points->dim()) +
        " does not match dataset dimension " +
        std::to_string(config_.points()->dim()));
  }
  return Status::OK();
}

Result<std::vector<ObjectId>> Engine::Insert(const InsertRequest& request) {
  GENIE_RETURN_NOT_OK(ValidateInsertRequest(request));
  return searcher_->Insert(request);
}

Status Engine::Remove(std::span<const ObjectId> ids) {
  if (ids.empty()) return Status::InvalidArgument("empty remove batch");
  return searcher_->Remove(ids);
}

Status Engine::Flush() { return searcher_->Flush(); }

MutationStats Engine::mutation_stats() const {
  return searcher_->mutation_stats();
}

std::string Engine::ExplainPlan() const { return searcher_->ExplainPlan(); }

ServingStats Engine::serving_stats() const {
  return scheduler_ != nullptr ? scheduler_->stats() : ServingStats{};
}

double Engine::AddOverlapSeconds(double delta) {
  std::lock_guard<std::mutex> lock(overlap_mu_);
  overlap_total_s_ += delta;
  return overlap_total_s_;
}

Result<SearchResult> Engine::SearchStream(const SearchRequest& request,
                                          const SearchStreamOptions& options,
                                          const SearchChunkCallback& on_chunk) {
  GENIE_RETURN_NOT_OK(ValidateRequest(request));
  const size_t total = request.num_queries();
  size_t chunk_size = options.chunk_size;
  if (chunk_size == 0) {
    // The derivation models the per-query working memory (c-PQ arenas /
    // count tables), which is allocated only while a chunk executes and is
    // never resident for two chunks at once — pipelining double-buffers
    // only the small task-list staging, which fits in the derivation's
    // free-capacity headroom (and a staging ResourceExhausted merely falls
    // back to unpipelined execution for that chunk). So the same fraction
    // applies with and without pipelining.
    chunk_size = searcher_->DeriveChunkSize(request, options.memory_fraction);
  }
  // Next preference: the chunk size the backend's ExecutionPlan derived
  // from the residency headroom (0 when no plan is live).
  if (chunk_size == 0) chunk_size = searcher_->PlannedChunkSize();
  if (chunk_size == 0) chunk_size = kDefaultStreamChunk;
  const size_t num_chunks = (total + chunk_size - 1) / chunk_size;

  SearchResult aggregate;
  aggregate.queries.reserve(total);

  // Folds one answered chunk into the aggregate and delivers it in order.
  auto deliver = [&](size_t index, size_t first_query,
                     Result<SearchResult>&& chunk) -> Status {
    aggregate.profile.Accumulate(chunk->profile);
    aggregate.cumulative = chunk->cumulative;
    if (on_chunk) {
      SearchChunk delivery;
      delivery.index = index;
      delivery.first_query = first_query;
      delivery.result = std::move(*chunk);
      GENIE_RETURN_NOT_OK(on_chunk(delivery));
      chunk = std::move(delivery.result);
    }
    for (QueryHits& hits : chunk->queries) {
      aggregate.queries.push_back(std::move(hits));
    }
    return Status::OK();
  };

  if (scheduler_ != nullptr) {
    // Serving path: chunks are admitted to the scheduler with a window of
    // two outstanding submissions — chunk k+1 queues (and may coalesce with
    // chunk k or with other callers' submissions) while chunk k's answer is
    // awaited. Delivery order and error semantics match the legacy paths.
    struct Outstanding {
      size_t first_query = 0;
      /// Owns the points slice the submitted request borrows; the scheduler
      /// borrows the payload until the future resolves.
      std::unique_ptr<data::PointMatrix> scratch;
      std::future<Result<SearchResult>> future;
    };
    auto submit = [&](size_t index) -> Outstanding {
      Outstanding slot;
      slot.first_query = index * chunk_size;
      const size_t count = std::min(chunk_size, total - slot.first_query);
      slot.scratch = std::make_unique<data::PointMatrix>();
      const SearchRequest chunk_request =
          SliceRequest(request, slot.first_query, count, slot.scratch.get());
      slot.future = scheduler_->SubmitAsync(chunk_request);
      return slot;
    };
    Outstanding current = submit(0);
    for (size_t index = 0; index < num_chunks; ++index) {
      Outstanding next;
      if (index + 1 < num_chunks) next = submit(index + 1);
      Result<SearchResult> chunk = current.future.get();
      // Any early return must first drain the look-ahead submission — its
      // payload borrows `next.scratch` / the caller's request until the
      // future resolves.
      Status status =
          chunk.ok() ? deliver(index, current.first_query, std::move(chunk))
                     : chunk.status();
      if (!status.ok()) {
        if (next.future.valid()) next.future.wait();
        return status;
      }
      current = std::move(next);
    }
    aggregate.cumulative.overlap_seconds = AddOverlapSeconds(0);
    return aggregate;
  }

  if (!options.pipeline || num_chunks <= 1) {
    // Sequential path: prepare and execute each chunk back-to-back.
    size_t index = 0;
    for (size_t done = 0; done < total; done += chunk_size, ++index) {
      const size_t count = std::min(chunk_size, total - done);
      data::PointMatrix scratch;
      const SearchRequest chunk_request =
          SliceRequest(request, done, count, &scratch);
      // The searcher serializes one chunk's backend execution, not the
      // stream: concurrent streams on one engine interleave chunk-by-chunk,
      // each chunk's profile delta is computed atomically with its batch,
      // and a chunk's host-side result shaping overlaps the next chunk's
      // device work.
      Result<SearchResult> chunk = searcher_->Search(chunk_request);
      // Cancellation on first error: remaining chunks are never submitted.
      if (!chunk.ok()) return chunk.status();
      GENIE_RETURN_NOT_OK(deliver(index, done, std::move(chunk)));
    }
    aggregate.cumulative.overlap_seconds = AddOverlapSeconds(0);
    return aggregate;
  }

  // Pipelined path: chunk k+1's prepare stage (query transform + device
  // staging) runs on a look-ahead thread concurrently with chunk k's
  // execute stage on this thread, double-buffered — exactly one chunk
  // staged ahead. Results, delivery order, and error semantics match the
  // sequential path; prepare errors surface at their chunk's turn, and any
  // error drains the staged successor (the look-ahead future is joined and
  // the prepared chunk destroyed, releasing its staging memory) before the
  // status is returned.
  struct PrepOutcome {
    Result<std::unique_ptr<Searcher::PreparedChunk>> prepared{
        Status::Internal("prepare never ran")};
    SteadyClock::time_point start{};
    SteadyClock::time_point end{};
  };
  struct InFlight {
    size_t first_query = 0;
    /// Owns the points slice the prepared chunk's request borrows.
    std::unique_ptr<data::PointMatrix> scratch;
    std::future<PrepOutcome> future;
  };
  auto launch_prepare = [&](size_t index) -> InFlight {
    InFlight slot;
    slot.first_query = index * chunk_size;
    const size_t count = std::min(chunk_size, total - slot.first_query);
    slot.scratch = std::make_unique<data::PointMatrix>();
    const SearchRequest chunk_request =
        SliceRequest(request, slot.first_query, count, slot.scratch.get());
    slot.future = std::async(std::launch::async, [this, chunk_request] {
      PrepOutcome outcome;
      outcome.start = SteadyClock::now();
      outcome.prepared = searcher_->PrepareChunk(chunk_request);
      outcome.end = SteadyClock::now();
      return outcome;
    });
    return slot;
  };

  double overlap_s = 0;
  SteadyClock::time_point exec_start{}, exec_end{};
  InFlight current = launch_prepare(0);
  for (size_t index = 0; index < num_chunks; ++index) {
    PrepOutcome outcome = current.future.get();
    // Keep the points slice alive until the chunk finishes executing (the
    // prepared request borrows it for re-ranking).
    std::unique_ptr<data::PointMatrix> scratch = std::move(current.scratch);
    const size_t first_query = current.first_query;
    // A prepare error surfaces at this chunk's turn, after every earlier
    // chunk was delivered — like the sequential path. No successor has
    // been launched yet, so there is nothing to drain.
    if (!outcome.prepared.ok()) return outcome.prepared.status();
    // This chunk's prepare ran while the previous chunk executed; count
    // the genuine overlap.
    if (index > 0) {
      overlap_s += IntervalOverlapSeconds(outcome.start, outcome.end,
                                          exec_start, exec_end);
    }
    // Stage the successor before executing this chunk — that concurrency
    // is the pipeline.
    if (index + 1 < num_chunks) {
      current = launch_prepare(index + 1);
    } else {
      current = InFlight{};
    }

    exec_start = SteadyClock::now();
    Result<SearchResult> chunk =
        searcher_->ExecutePrepared(std::move(outcome.prepared).ValueOrDie());
    exec_end = SteadyClock::now();
    // Cancellation on first error (from the execution or the callback):
    // returning destroys `current`, which joins the look-ahead thread and
    // discards the staged chunk — the drain.
    if (!chunk.ok()) return chunk.status();
    GENIE_RETURN_NOT_OK(deliver(index, first_query, std::move(chunk)));
  }
  aggregate.profile.overlap_seconds = overlap_s;
  aggregate.cumulative.overlap_seconds = AddOverlapSeconds(overlap_s);
  return aggregate;
}

std::future<Result<SearchResult>> Engine::SearchAsync(
    SearchRequest request, SearchStreamOptions options,
    SearchChunkCallback on_chunk) {
  {
    std::lock_guard<std::mutex> lock(async_->mu);
    ++async_->inflight;
  }
  // Decrements on scope exit — normal return or unwind — so a throwing
  // callback cannot leave inflight stuck and hang the destructor. After it
  // fires the destructor may proceed; the tracker itself is co-owned, and
  // nothing below touches the engine past that point.
  struct InflightGuard {
    std::shared_ptr<AsyncTracker> tracker;
    ~InflightGuard() {
      std::lock_guard<std::mutex> lock(tracker->mu);
      --tracker->inflight;
      tracker->cv.notify_all();
    }
  };
  auto task = std::make_shared<std::packaged_task<Result<SearchResult>()>>(
      [this, tracker = async_, request = std::move(request), options,
       on_chunk = std::move(on_chunk)] {
        InflightGuard guard{tracker};
        return SearchStream(request, options, on_chunk);
      });
  std::future<Result<SearchResult>> future = task->get_future();
  // The pool's ParallelFor has caller participation, so a pool saturated
  // with async searches cannot deadlock the nested parallelism inside the
  // multi-load merge (or another caller's ParallelFor).
  DefaultThreadPool()->Submit([task] { (*task)(); });
  return future;
}

}  // namespace genie
