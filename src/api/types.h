#pragma once

/// \file types.h
/// Unified request/response types of the genie::Engine facade. The paper's
/// point is that one match-count inverted index serves many similarity
/// workloads; these types give every workload (modality) the same request,
/// result, and profile shape, normalizing the per-domain return types
/// (QueryResult, AnnMatch, SequenceSearchOutcome) of the lower layers.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "data/points.h"
#include "index/types.h"
#include "sa/relational.h"

namespace genie {

/// The similarity workloads of Sections IV & V, plus a pass-through for
/// pre-compiled match-count queries over a caller-built index.
enum class Modality {
  kPoints,      // tau-ANN on dense vectors under an LSH family (Section IV)
  kSets,        // Jaccard similarity via MinHash (Section II-B1)
  kSequences,   // edit distance via ordered n-grams (Section V-A)
  kDocuments,   // inner product on word sets (Section V-B)
  kRelational,  // top-k selection on range predicates (Section V-C)
  kCompiled,    // raw Definition-2.1 queries over a prebuilt InvertedIndex
};

const char* ModalityToString(Modality modality);

/// c-PQ vs Count-Table selection (MatchEngineOptions::Selector re-exported
/// so facade users need no core include).
enum class SelectorKind {
  kCpq,            // GENIE: c-PQ + single hash-table scan (Algorithm 1)
  kCountTableSpq,  // GEN-SPQ: full Count Table + bucket k-selection
  kBucketSelect,   // packed Bitmap Counter + bucket k-selection (no gate /
                   // hash table; overflow-immune)
};

/// One batch of queries. Construct with the factory matching the engine's
/// modality; the payload spans are only borrowed for the Search() call.
struct SearchRequest {
  Modality modality = Modality::kPoints;

  /// Caller identity for the serving layer's per-tenant fairness and
  /// backpressure (EngineConfig::Serving). Ignored — results are identical
  /// for every value — when serving is off.
  uint64_t tenant = 0;

  const data::PointMatrix* points = nullptr;
  std::span<const std::vector<uint32_t>> sets;
  std::span<const std::string> sequences;
  std::span<const std::vector<uint32_t>> documents;
  std::span<const sa::RangeQuery> ranges;
  std::span<const Query> compiled;

  SearchRequest& Tenant(uint64_t id) {
    tenant = id;
    return *this;
  }

  static SearchRequest Points(const data::PointMatrix& queries);
  static SearchRequest Sets(std::span<const std::vector<uint32_t>> queries);
  static SearchRequest Sequences(std::span<const std::string> queries);
  static SearchRequest Documents(std::span<const std::vector<uint32_t>> queries);
  static SearchRequest Ranges(std::span<const sa::RangeQuery> queries);
  static SearchRequest Compiled(std::span<const Query> queries);

  size_t num_queries() const;
};

/// One batch of objects to insert into a live engine (Engine::Insert).
/// Construct with the factory matching the engine's modality; the payload
/// spans are only borrowed for the Insert() call. Inserted objects receive
/// monotonically increasing ids continuing the indexed dataset's id space.
struct InsertRequest {
  Modality modality = Modality::kPoints;

  const data::PointMatrix* points = nullptr;
  std::span<const std::vector<uint32_t>> sets;
  std::span<const std::string> sequences;
  std::span<const std::vector<uint32_t>> documents;
  /// Relational rows, row-major: one entry per row, holding one value per
  /// column (value[c] must be < the table's cardinality of column c).
  std::span<const std::vector<uint32_t>> rows;
  /// Compiled modality: each object's raw keyword list.
  std::span<const std::vector<Keyword>> objects;

  static InsertRequest Points(const data::PointMatrix& objects);
  static InsertRequest Sets(std::span<const std::vector<uint32_t>> objects);
  static InsertRequest Sequences(std::span<const std::string> objects);
  static InsertRequest Documents(std::span<const std::vector<uint32_t>> objects);
  static InsertRequest Rows(std::span<const std::vector<uint32_t>> rows);
  static InsertRequest Objects(std::span<const std::vector<Keyword>> objects);

  size_t num_objects() const;
};

/// Mutation counters of a live engine (Engine::mutation_stats).
struct MutationStats {
  uint64_t inserts = 0;
  uint64_t removes = 0;
  uint64_t compactions = 0;
  /// Wall seconds of the last compaction's off-line index rebuild (runs
  /// with no locks held — searches keep flowing).
  double last_compact_seconds = 0;
  /// Wall seconds the last compaction commit held the mutation lock (the
  /// only window in which inserts/removes — never searches — stall).
  double last_pause_seconds = 0;
};

/// One ranked answer. `score` ranks hits in descending order; its meaning
/// per modality:
///   points/sets  match mode: estimated similarity c/m (Eqn. 7);
///                rerank mode: exact similarity (sets) or negated exact
///                l_p distance (points);
///   sequences    negated edit distance;
///   documents    inner product (= match count);
///   relational   number of satisfied predicates (= match count);
///   compiled     match count.
struct Hit {
  ObjectId id = kInvalidObjectId;
  uint32_t match_count = 0;
  double score = 0;
};

/// Answers of one query, best first.
struct QueryHits {
  std::vector<Hit> hits;
  /// The k-th match count MC_k (Theorem 3.1's AT - 1); 0 when fewer than k
  /// objects matched.
  uint32_t threshold = 0;
  /// Sequences only: Theorem 5.2 certified the kNN as the true kNN.
  bool certified_exact = false;
  /// Sequences only: escalation rounds executed (Section VI-D3).
  uint32_t rounds = 1;
};

/// Stage costs of one device of a multi-device backend (the per-device
/// slice of SearchProfile's transfer/match/select stages).
struct DeviceProfile {
  double index_transfer_s = 0;
  double query_transfer_s = 0;
  double match_s = 0;
  double select_s = 0;
  /// Prepare-stage seconds of this device (task resolution + staging
  /// upload); a subset of query_transfer_s, split out so the pipelined
  /// stream's per-device overlap potential is visible.
  double prepare_s = 0;
  uint64_t index_bytes = 0;
  uint64_t query_bytes = 0;
  uint64_t result_bytes = 0;
};

/// Per-worker network + stage costs of the multi-node tier (empty unless
/// the engine runs on EngineConfig::Remote endpoints). Keyed by worker
/// address; replica addresses report separately, which is how hedges and
/// failovers become visible.
struct WorkerProfile {
  std::string address;
  uint64_t calls = 0;     // match attempts shipped to this worker
  uint64_t wins = 0;      // attempts whose response was used
  uint64_t failures = 0;  // attempts that errored
  uint64_t hedged = 0;    // attempts launched as hedges
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
  double network_s = 0;        // transport wall seconds minus worker execute
  double call_s = 0;           // transport wall seconds (round trip)
  double worker_match_s = 0;   // worker-reported stage seconds
  double worker_select_s = 0;
};

/// Stage costs and backend facts (Table I / Table III shapes, unified
/// across single-load, multi-load and multi-device). SearchResult carries
/// two of these: the costs of that Search call alone (`profile`) and the
/// running total since engine creation (`cumulative`).
struct SearchProfile {
  double index_transfer_s = 0;
  double query_transfer_s = 0;
  double match_s = 0;
  double select_s = 0;
  double merge_s = 0;   // multi-load host merge
  double verify_s = 0;  // sequence verification (Algorithm 2)
  /// Prepare-stage seconds (Position-Map resolution + device staging of
  /// the task lists). Counted inside query_transfer_s as well; split out
  /// because this is the work the pipelined SearchStream overlaps with the
  /// previous chunk's match.
  double prepare_seconds = 0;
  /// Wall-clock seconds during which a chunk's prepare ran concurrently
  /// with another chunk's execution (the pipelined SearchStream's win;
  /// always 0 on blocking Search and on single-chunk or unpipelined
  /// streams).
  double overlap_seconds = 0;
  uint64_t index_bytes = 0;
  uint64_t query_bytes = 0;
  uint64_t result_bytes = 0;
  /// True when the index did not fit and MultiLoadEngine answered.
  bool used_multi_load = false;
  /// Index parts per batch (1 on the single-load path).
  uint32_t parts = 1;
  /// Devices the work executed on (> 1 on the multi-device tier). Under
  /// Accumulate this is the maximum seen, so it stays consistent with the
  /// summed per_device breakdown even when a stream's backend falls back
  /// to a single device mid-way.
  uint32_t devices = 1;
  /// Per-device stage costs, indexed by device ordinal (empty on the
  /// single-device tiers).
  std::vector<DeviceProfile> per_device;
  /// Multi-node tier: workers the engine scattered to (empty otherwise).
  uint32_t workers = 0;
  /// Per-worker network/stage costs, keyed by address (empty off-remote).
  std::vector<WorkerProfile> per_worker;
  /// Coordinator-side scatter wall seconds (remote tier only).
  double scatter_seconds = 0;
  /// True when the live tier was built from a QueryPlanner ExecutionPlan
  /// (false = legacy decision path, or the escalation safety net replaced
  /// the plan mid-way).
  bool planned = false;
  /// Tier the plan named ("single-device" / "multi-device" / "multi-load";
  /// empty on searchers without a planning backend).
  std::string plan_tier;
  /// Stream chunk size / pipeline depth the plan recommends.
  uint32_t planned_chunk_size = 1;
  uint32_t planned_pipeline_depth = 1;
  /// Serving layer (EngineConfig::Serving): seconds this request waited in
  /// its tenant queue before its super-batch executed. 0 on the legacy path
  /// and on cache hits.
  double queue_seconds = 0;
  /// Requests coalesced into the super-batch that answered this one (1 =
  /// the request executed alone; 0 = the serving layer was off or the
  /// answer came from the cache).
  uint32_t coalesced_batch = 0;
  /// Queries of this request answered from the hot-query ResultCache
  /// without touching the backend.
  uint64_t cache_hits = 0;

  double total_query_s() const {
    return query_transfer_s + match_s + select_s + merge_s + verify_s;
  }

  /// Folds another profile's costs in (summing stages; backend facts take
  /// the other's values, which chronologically later deltas carry). Used by
  /// the streaming pipeline to aggregate per-chunk deltas.
  void Accumulate(const SearchProfile& other) {
    index_transfer_s += other.index_transfer_s;
    query_transfer_s += other.query_transfer_s;
    match_s += other.match_s;
    select_s += other.select_s;
    merge_s += other.merge_s;
    verify_s += other.verify_s;
    prepare_seconds += other.prepare_seconds;
    overlap_seconds += other.overlap_seconds;
    index_bytes += other.index_bytes;
    query_bytes += other.query_bytes;
    result_bytes += other.result_bytes;
    used_multi_load = used_multi_load || other.used_multi_load;
    parts = other.parts;
    devices = std::max(devices, other.devices);
    planned = other.planned;
    plan_tier = other.plan_tier;
    planned_chunk_size = other.planned_chunk_size;
    planned_pipeline_depth = other.planned_pipeline_depth;
    queue_seconds += other.queue_seconds;
    coalesced_batch = std::max(coalesced_batch, other.coalesced_batch);
    cache_hits += other.cache_hits;
    if (per_device.size() < other.per_device.size()) {
      per_device.resize(other.per_device.size());
    }
    for (size_t d = 0; d < other.per_device.size(); ++d) {
      per_device[d].index_transfer_s += other.per_device[d].index_transfer_s;
      per_device[d].query_transfer_s += other.per_device[d].query_transfer_s;
      per_device[d].match_s += other.per_device[d].match_s;
      per_device[d].select_s += other.per_device[d].select_s;
      per_device[d].prepare_s += other.per_device[d].prepare_s;
      per_device[d].index_bytes += other.per_device[d].index_bytes;
      per_device[d].query_bytes += other.per_device[d].query_bytes;
      per_device[d].result_bytes += other.per_device[d].result_bytes;
    }
    workers = std::max(workers, other.workers);
    scatter_seconds += other.scatter_seconds;
    for (const WorkerProfile& worker : other.per_worker) {
      WorkerProfile* slot = nullptr;
      for (WorkerProfile& existing : per_worker) {
        if (existing.address == worker.address) {
          slot = &existing;
          break;
        }
      }
      if (slot == nullptr) {
        per_worker.push_back(WorkerProfile{});
        slot = &per_worker.back();
        slot->address = worker.address;
      }
      slot->calls += worker.calls;
      slot->wins += worker.wins;
      slot->failures += worker.failures;
      slot->hedged += worker.hedged;
      slot->request_bytes += worker.request_bytes;
      slot->response_bytes += worker.response_bytes;
      slot->network_s += worker.network_s;
      slot->call_s += worker.call_s;
      slot->worker_match_s += worker.worker_match_s;
      slot->worker_select_s += worker.worker_select_s;
    }
  }
};

/// One result per query of the request, in request order.
struct SearchResult {
  std::vector<QueryHits> queries;
  /// Costs of this Search / SearchStream call alone (the per-call delta).
  SearchProfile profile;
  /// Running totals since engine creation.
  SearchProfile cumulative;
};

/// Chunking knobs of Engine::SearchStream / SearchAsync.
struct SearchStreamOptions {
  /// Queries submitted to the backend per chunk (the paper's Fig. 11 runs
  /// 65536 queries as 64 chunks of 1024). 0 = derive from the free device
  /// memory where the modality allows it (compiled queries, via
  /// DeriveLargeBatchSize — oversubscription-safe), else 1024.
  uint32_t chunk_size = 1024;
  /// When chunk_size is 0: fraction of the free device capacity the
  /// per-chunk working memory may occupy. Working memory is only resident
  /// for the executing chunk (pipelining double-buffers just the small
  /// task-list staging, covered by the remaining headroom), so the same
  /// fraction applies with and without pipelining.
  double memory_fraction = 0.5;
  /// Two-stage pipelining (default on): chunk k+1's prepare stage (query
  /// transform + per-device staging of the task lists) runs concurrently
  /// with chunk k's execute stage (match + select + host merge),
  /// double-buffered — at most one chunk staged ahead. Results, delivery
  /// order, and cancellation semantics are identical to the sequential
  /// path; the first error also drains (discards) the staged chunk.
  /// profile.overlap_seconds reports the measured overlap.
  bool pipeline = true;
};

/// One delivered chunk of a streaming search: `result.queries` holds the
/// answers of queries [first_query, first_query + result.queries.size())
/// of the request, and `result.profile` is the delta of this chunk alone.
struct SearchChunk {
  size_t index = 0;        // chunk ordinal, starting at 0
  size_t first_query = 0;  // offset of the chunk's first query
  SearchResult result;
};

/// Per-chunk delivery hook of SearchStream. Chunks arrive in input order.
/// Returning a non-OK status cancels the remaining chunks and surfaces that
/// status from SearchStream / the SearchAsync future.
using SearchChunkCallback = std::function<Status(const SearchChunk&)>;

/// Knobs of the serving layer (EngineConfig::Serving): continuous batching
/// of small concurrent submissions into device-sized super-batches, a
/// hot-query result cache with in-flight dedup, and weighted-DRR per-tenant
/// fairness with queue-bound backpressure. Results are identical to the
/// legacy path for every knob setting; only latency, throughput, and the
/// new SearchProfile serving fields differ.
struct ServingOptions {
  /// Target queries per coalesced super-batch. 0 = the live ExecutionPlan's
  /// chunk size when the planner produced one, else 1024 (the resolution
  /// order of BatchAssembler::ResolveTargetBatch).
  uint32_t target_batch = 0;
  /// Latency-deadline knob of continuous batching: a pending request is
  /// dispatched no later than this many seconds after it was admitted, even
  /// if the super-batch has not filled.
  double max_queue_delay_s = 0.001;
  /// Backpressure: pending requests one tenant may queue before further
  /// submissions fail with ResourceExhausted. 0 = unbounded.
  uint32_t max_pending_per_tenant = 1024;
  /// Hot-query result-cache capacity in entries (one entry = one submitted
  /// request's answers). 0 disables caching.
  uint32_t cache_capacity = 1024;
  /// Seconds a cached answer stays servable. Generation invalidation (any
  /// Insert / Remove / compaction hot-swap) applies regardless of TTL;
  /// <= 0 means entries never expire by age.
  double cache_ttl_s = 60.0;
  /// Collapse identical concurrent submissions: followers attach to the
  /// queued leader and share its answer, so N identical pending queries run
  /// the backend once.
  bool dedup_inflight = true;
  /// Weighted deficit round-robin: queries one unit-weight tenant may
  /// dequeue per scheduling round.
  uint32_t fairness_quantum = 64;
  /// Per-tenant DRR weights; unlisted tenants weigh 1.0.
  std::vector<std::pair<uint64_t, double>> tenant_weights;
};

/// Counters of the serving layer since engine creation
/// (Engine::ServingStats; all zero when serving is off).
struct ServingStats {
  uint64_t submitted = 0;         // requests admitted (incl. cache/dedup hits)
  uint64_t rejected = 0;          // backpressure ResourceExhausted rejections
  uint64_t cache_hits = 0;        // requests answered wholly from the cache
  uint64_t cache_misses = 0;      // requests that had to execute
  uint64_t dedup_followers = 0;   // requests attached to an identical leader
  uint64_t batches = 0;           // super-batches executed
  uint64_t coalesced_requests = 0;  // requests answered via super-batches
  uint64_t executed_queries = 0;  // queries the backend actually ran
  double total_queue_seconds = 0;   // summed per-request queue wait
  double max_queue_seconds = 0;     // worst per-request queue wait
};

}  // namespace genie
