#include "api/searcher.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "core/batch_scheduler.h"
#include "core/engine_backend.h"
#include "lsh/e2lsh.h"
#include "lsh/lsh_searcher.h"
#include "lsh/min_hash.h"
#include "lsh/set_searcher.h"
#include "sa/document_searcher.h"
#include "sa/relational.h"
#include "sa/sequence_searcher.h"

namespace genie {
namespace {

constexpr uint32_t kDefaultHashFunctions = 64;
constexpr uint32_t kDefaultPointsRehashDomain = 8192;
constexpr uint32_t kDefaultSetsRehashDomain = 1024;

/// Bundle meta tags for the concrete LSH family types; caller-supplied
/// custom families cannot be persisted (Save fails with Unimplemented).
constexpr uint8_t kVectorFamilyE2Lsh = 1;
constexpr uint8_t kSetFamilyMinHash = 1;

MatchEngineOptions BaseEngineOptions(const EngineConfig& config) {
  MatchEngineOptions options;
  options.k = config.k();
  options.max_count = config.max_count();
  options.selector = config.selector() == SelectorKind::kCpq
                         ? MatchEngineOptions::Selector::kCpq
                         : MatchEngineOptions::Selector::kCountTableSpq;
  options.block_dim = config.block_dim();
  options.max_lists_per_block = config.max_lists_per_block();
  options.collect_ht_stats = config.collect_ht_stats();
  options.device = config.device();
  return options;
}

EngineBackendOptions BackendOptions(const EngineConfig& config) {
  EngineBackendOptions options;
  options.allow_multi_load = config.allow_multi_load();
  options.max_parts = config.max_parts();
  options.force_parts = config.force_parts();
  options.shard_build.max_list_length = config.max_list_length();
  options.num_devices = config.num_devices();
  return options;
}

IndexBuildOptions BuildOptions(const EngineConfig& config) {
  IndexBuildOptions options;
  options.max_list_length = config.max_list_length();
  return options;
}

/// Candidates to fetch per query for the re-rank / verify modalities.
uint32_t CandidatePoolSize(const EngineConfig& config) {
  return config.candidate_k() > 0 ? config.candidate_k()
                                  : std::max(config.k(), 32u);
}

/// Backend state captured atomically with a batch — the backend's one-lock
/// profile snapshot plus the modality's verify seconds — inside the
/// searcher's critical section. The per-call delta is computed from two of
/// these after the lock is released, so the facade never reads the backend
/// live while another thread executes.
struct BackendSnapshot {
  EngineBackend::ProfileSnapshot backend;
  double verify_s = 0;
};

BackendSnapshot Snapshot(const EngineBackend& backend, double verify_s = 0) {
  return BackendSnapshot{backend.profile_snapshot(), verify_s};
}

std::vector<DeviceProfile> DeviceCosts(
    const std::vector<MatchProfile>& devices) {
  std::vector<DeviceProfile> costs(devices.size());
  for (size_t d = 0; d < devices.size(); ++d) {
    costs[d].index_transfer_s = devices[d].index_transfer_s;
    costs[d].query_transfer_s = devices[d].query_transfer_s;
    costs[d].match_s = devices[d].match_s;
    costs[d].select_s = devices[d].select_s;
    costs[d].prepare_s = devices[d].prepare_s;
    costs[d].index_bytes = devices[d].index_bytes;
    costs[d].query_bytes = devices[d].query_bytes;
    costs[d].result_bytes = devices[d].result_bytes;
  }
  return costs;
}

SearchProfile MakeProfile(const MatchProfile& p, double merge_s,
                          double verify_s,
                          const EngineBackend::ProfileSnapshot& facts) {
  SearchProfile profile;
  profile.index_transfer_s = p.index_transfer_s;
  profile.query_transfer_s = p.query_transfer_s;
  profile.match_s = p.match_s;
  profile.select_s = p.select_s;
  profile.merge_s = merge_s;
  profile.verify_s = verify_s;
  profile.prepare_seconds = p.prepare_s;
  profile.index_bytes = p.index_bytes;
  profile.query_bytes = p.query_bytes;
  profile.result_bytes = p.result_bytes;
  profile.used_multi_load = facts.multi_load;
  profile.parts = facts.parts;
  profile.devices = facts.num_devices;
  return profile;
}

/// Fills result->profile with the delta between the two snapshots and
/// result->cumulative with the `after` totals.
void FillProfiles(SearchResult* result, const BackendSnapshot& before,
                  const BackendSnapshot& after) {
  MatchProfile delta = after.backend.match;
  delta.Subtract(before.backend.match);
  result->profile =
      MakeProfile(delta, after.backend.merge_s - before.backend.merge_s,
                  after.verify_s - before.verify_s, after.backend);
  result->cumulative = MakeProfile(after.backend.match, after.backend.merge_s,
                                   after.verify_s, after.backend);
  result->cumulative.per_device = DeviceCosts(after.backend.devices);
  if (before.backend.devices.size() == after.backend.devices.size()) {
    std::vector<MatchProfile> device_delta = after.backend.devices;
    for (size_t d = 0; d < device_delta.size(); ++d) {
      device_delta[d].Subtract(before.backend.devices[d]);
    }
    result->profile.per_device = DeviceCosts(device_delta);
  } else {
    // The multi-device tier appeared during this call: all of its
    // per-device cost belongs to it. If instead the tier was retired
    // mid-call (fallback to multi-load), its per-device history was folded
    // into the aggregate stage costs and no per-device attribution
    // remains — the delta's scalar fields still carry those costs.
    result->profile.per_device = DeviceCosts(after.backend.devices);
  }
}

/// MC_k of one answer list: the k-th match count when k answers exist.
/// Precondition: `hits` is in descending match-count order.
uint32_t ThresholdOf(const std::vector<Hit>& hits, uint32_t k) {
  return hits.size() >= k ? hits[k - 1].match_count : 0;
}

/// MC_k of a list in arbitrary order (verified / re-ranked answers).
uint32_t KthLargestCount(const std::vector<Hit>& hits, uint32_t k) {
  if (hits.size() < k) return 0;
  std::vector<uint32_t> counts;
  counts.reserve(hits.size());
  for (const Hit& hit : hits) counts.push_back(hit.match_count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts[k - 1];
}

// ---------------------------------------------------------------------------
// Points (tau-ANN under an LSH family, Section IV)
// ---------------------------------------------------------------------------

class PointsSearcherImpl : public Searcher {
 public:
  PointsSearcherImpl(const data::PointMatrix* points,
                     std::unique_ptr<lsh::LshSearcher> searcher, uint32_t k,
                     bool rerank, uint32_t p)
      : points_(points), searcher_(std::move(searcher)), k_(k),
        rerank_(rerank), p_(p) {}

  Modality modality() const override { return Modality::kPoints; }
  uint32_t num_objects() const override { return points_->num_points(); }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    lsh::LshSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch, searcher_->Prepare(*request.points));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    const SearchRequest& request = prepared->request;
    std::vector<std::vector<lsh::AnnMatch>> matches;
    BackendSnapshot before, after;
    {
      // Critical section: the backend execution and its profile
      // bookkeeping. Re-ranking and hit shaping below run outside it.
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          matches, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(matches.size());
    for (size_t q = 0; q < matches.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(matches[q].size());
      for (const lsh::AnnMatch& m : matches[q]) {
        out.hits.push_back(Hit{m.id, m.match_count, m.estimated_similarity});
      }
      // MC_k over the match-count ordering, before any re-rank disturbs it.
      out.threshold = ThresholdOf(out.hits, k_);
      if (rerank_) {
        const auto query_row = request.points->row(static_cast<uint32_t>(q));
        for (Hit& hit : out.hits) {
          const double d =
              p_ == 1 ? data::L1Distance(points_->row(hit.id), query_row)
                      : data::L2Distance(points_->row(hit.id), query_row);
          hit.score = -d;
        }
        std::sort(out.hits.begin(), out.hits.end(),
                  [](const Hit& a, const Hit& b) { return a.score > b.score; });
      }
      if (out.hits.size() > k_) out.hits.resize(k_);
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    const auto* e2lsh = dynamic_cast<const lsh::E2LshFamily*>(
        &searcher_->transformer().family());
    if (e2lsh == nullptr) {
      return Status::Unimplemented(
          "only engines over the built-in E2LSH family support Save");
    }
    writer->U8(kVectorFamilyE2Lsh);
    e2lsh->Serialize(writer);
    searcher_->transformer().Serialize(writer);
    writer->U32(points_->num_points());
    writer->U32(points_->dim());
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return &searcher_->index();
  }

 private:
  const data::PointMatrix* points_;
  std::unique_ptr<lsh::LshSearcher> searcher_;
  std::mutex mu_;
  uint32_t k_;
  bool rerank_;
  uint32_t p_;
};

// ---------------------------------------------------------------------------
// Sets (Jaccard via MinHash, Section II-B1)
// ---------------------------------------------------------------------------

class SetsSearcherImpl : public Searcher {
 public:
  SetsSearcherImpl(const std::vector<std::vector<uint32_t>>* sets,
                   std::shared_ptr<const lsh::SetLshFamily> family,
                   std::unique_ptr<lsh::SetLshSearcher> searcher, uint32_t k,
                   bool rerank)
      : sets_(sets), family_(std::move(family)), searcher_(std::move(searcher)),
        k_(k), rerank_(rerank) {}

  Modality modality() const override { return Modality::kSets; }
  uint32_t num_objects() const override {
    return static_cast<uint32_t>(sets_->size());
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    lsh::SetLshSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch, searcher_->Prepare(request.sets));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    const SearchRequest& request = prepared->request;
    std::vector<std::vector<lsh::AnnMatch>> matches;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          matches, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(matches.size());
    for (size_t q = 0; q < matches.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(matches[q].size());
      for (const lsh::AnnMatch& m : matches[q]) {
        out.hits.push_back(Hit{m.id, m.match_count, m.estimated_similarity});
      }
      // MC_k over the match-count ordering, before any re-rank disturbs it.
      out.threshold = ThresholdOf(out.hits, k_);
      if (rerank_) {
        for (Hit& hit : out.hits) {
          hit.score =
              family_->CollisionProbability((*sets_)[hit.id], request.sets[q]);
        }
        std::sort(out.hits.begin(), out.hits.end(),
                  [](const Hit& a, const Hit& b) { return a.score > b.score; });
      }
      if (out.hits.size() > k_) out.hits.resize(k_);
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    const auto* min_hash =
        dynamic_cast<const lsh::MinHashFamily*>(family_.get());
    if (min_hash == nullptr) {
      return Status::Unimplemented(
          "only engines over the built-in MinHash family support Save");
    }
    writer->U8(kSetFamilyMinHash);
    min_hash->Serialize(writer);
    const lsh::LshTransformOptions& transform =
        searcher_->transform_options();
    writer->U32(transform.rehash_domain);
    writer->U64(transform.seed);
    writer->U8(transform.rehash ? 1 : 0);
    writer->Vec(searcher_->rehash_seeds());
    writer->U32(static_cast<uint32_t>(sets_->size()));
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return &searcher_->index();
  }

 private:
  const std::vector<std::vector<uint32_t>>* sets_;
  std::shared_ptr<const lsh::SetLshFamily> family_;
  std::unique_ptr<lsh::SetLshSearcher> searcher_;
  std::mutex mu_;
  uint32_t k_;
  bool rerank_;
};

// ---------------------------------------------------------------------------
// Sequences (edit distance via ordered n-grams, Section V-A)
// ---------------------------------------------------------------------------

class SequencesSearcherImpl : public Searcher {
 public:
  SequencesSearcherImpl(const std::vector<std::string>* sequences,
                        std::unique_ptr<sa::SequenceSearcher> searcher,
                        uint32_t k)
      : sequences_(sequences), searcher_(std::move(searcher)), k_(k) {}

  Modality modality() const override { return Modality::kSequences; }
  uint32_t num_objects() const override {
    return static_cast<uint32_t>(sequences_->size());
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    sa::SequenceSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch,
                           searcher_->Prepare(request.sequences));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    const SearchRequest& request = prepared->request;
    std::vector<sa::SequenceSearchOutcome> outcomes;
    BackendSnapshot before, after;
    {
      // Verification (Algorithm 2) — and any escalation rounds — happen
      // inside ExecutePrepared, so the verify-seconds bookkeeping shares
      // the critical section.
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend(), searcher_->verify_seconds());
      GENIE_ASSIGN_OR_RETURN(
          outcomes, searcher_->ExecutePrepared(request.sequences,
                                               std::move(prepared->batch)));
      after = Snapshot(searcher_->backend(), searcher_->verify_seconds());
    }
    SearchResult result;
    result.queries.resize(outcomes.size());
    for (size_t q = 0; q < outcomes.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(outcomes[q].knn.size());
      for (const sa::SequenceMatch& m : outcomes[q].knn) {
        out.hits.push_back(Hit{m.id, m.match_count,
                               -static_cast<double>(m.edit_distance)});
      }
      // Hits are ordered by edit distance; MC_k comes from their counts.
      out.threshold = KthLargestCount(out.hits, k_);
      out.certified_exact = outcomes[q].certified_exact;
      out.rounds = outcomes[q].rounds;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    writer->U32(searcher_->ngram());
    searcher_->vocabulary().Serialize(writer);
    writer->U32(static_cast<uint32_t>(sequences_->size()));
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return &searcher_->index();
  }

 private:
  const std::vector<std::string>* sequences_;
  std::unique_ptr<sa::SequenceSearcher> searcher_;
  std::mutex mu_;
  uint32_t k_;
};

// ---------------------------------------------------------------------------
// Documents (inner product on word sets, Section V-B)
// ---------------------------------------------------------------------------

class DocumentsSearcherImpl : public Searcher {
 public:
  DocumentsSearcherImpl(const std::vector<std::vector<uint32_t>>* documents,
                        std::unique_ptr<sa::DocumentSearcher> searcher)
      : documents_(documents), searcher_(std::move(searcher)) {}

  Modality modality() const override { return Modality::kDocuments; }
  uint32_t num_objects() const override {
    return static_cast<uint32_t>(documents_->size());
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    sa::DocumentSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch,
                           searcher_->Prepare(request.documents));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    std::vector<QueryResult> raw;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          raw, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(raw.size());
    for (size_t q = 0; q < raw.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(raw[q].entries.size());
      for (const TopKEntry& e : raw[q].entries) {
        out.hits.push_back(Hit{e.id, e.count, static_cast<double>(e.count)});
      }
      out.threshold = raw[q].threshold;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    writer->U32(searcher_->vocab_size());
    writer->U32(static_cast<uint32_t>(documents_->size()));
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return &searcher_->index();
  }

 private:
  const std::vector<std::vector<uint32_t>>* documents_;
  std::unique_ptr<sa::DocumentSearcher> searcher_;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// Relational (top-k selection on range predicates, Section V-C)
// ---------------------------------------------------------------------------

class RelationalSearcherImpl : public Searcher {
 public:
  RelationalSearcherImpl(const sa::RelationalTable* table,
                         std::unique_ptr<sa::RelationalSearcher> searcher)
      : table_(table), searcher_(std::move(searcher)) {}

  Modality modality() const override { return Modality::kRelational; }
  uint32_t num_objects() const override { return table_->num_rows(); }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    sa::RelationalSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch, searcher_->Prepare(request.ranges));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    std::vector<QueryResult> raw;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          raw, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(raw.size());
    for (size_t q = 0; q < raw.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(raw[q].entries.size());
      for (const TopKEntry& e : raw[q].entries) {
        out.hits.push_back(Hit{e.id, e.count, static_cast<double>(e.count)});
      }
      out.threshold = raw[q].threshold;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    writer->U32(table_->num_rows());
    const DimValueEncoder& encoder = searcher_->encoder();
    std::vector<uint32_t> cardinalities(encoder.num_dims());
    for (uint32_t d = 0; d < encoder.num_dims(); ++d) {
      cardinalities[d] = encoder.buckets(d);
    }
    writer->Vec(cardinalities);
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return &searcher_->index();
  }

 private:
  const sa::RelationalTable* table_;
  std::unique_ptr<sa::RelationalSearcher> searcher_;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// Compiled (raw Definition-2.1 queries over a caller-built index)
// ---------------------------------------------------------------------------

class CompiledSearcherImpl : public Searcher {
 public:
  CompiledSearcherImpl(const InvertedIndex* index,
                       std::unique_ptr<EngineBackend> backend)
      : index_(index), backend_(std::move(backend)) {}

  /// Bundle-open mode: the searcher owns the loaded index (a bundle has no
  /// caller-held index to borrow). Two-phase: construct, then create the
  /// backend over index() — the member's address is stable from here on.
  explicit CompiledSearcherImpl(InvertedIndex owned)
      : owned_index_(std::move(owned)), index_(&owned_index_) {}

  void AdoptBackend(std::unique_ptr<EngineBackend> backend) {
    backend_ = std::move(backend);
  }

  const InvertedIndex& index() const { return *index_; }

  Modality modality() const override { return Modality::kCompiled; }
  uint32_t num_objects() const override { return index_->num_objects(); }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    EngineBackend::StagedChunk staged;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->staged,
                           backend_->Prepare(request.compiled));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    std::vector<QueryResult> raw;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(*backend_);
      GENIE_ASSIGN_OR_RETURN(raw,
                             backend_->Execute(std::move(prepared->staged)));
      after = Snapshot(*backend_);
    }
    SearchResult result;
    result.queries.resize(raw.size());
    for (size_t q = 0; q < raw.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(raw[q].entries.size());
      for (const TopKEntry& e : raw[q].entries) {
        out.hits.push_back(Hit{e.id, e.count, static_cast<double>(e.count)});
      }
      out.threshold = raw[q].threshold;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  uint32_t DeriveChunkSize(const SearchRequest& request,
                           double memory_fraction) const override {
    const uint32_t max_count =
        backend_->options().max_count > 0
            ? backend_->options().max_count
            : MatchEngine::DeriveMaxCount(request.compiled);
    const uint64_t per_query = MatchEngine::DeviceBytesPerQuery(
        backend_->index().num_objects(), backend_->options(), max_count);
    const EngineBackend::BatchBudget budget = backend_->batch_budget();
    return DeriveLargeBatchSize(budget.capacity_bytes, budget.allocated_bytes,
                                per_query, memory_fraction);
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    (void)writer;  // the index is the whole state
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override { return index_; }

 private:
  InvertedIndex owned_index_;
  const InvertedIndex* index_;
  std::unique_ptr<EngineBackend> backend_;
  std::mutex mu_;
};

/// The runtime (non-transform) LshSearchOptions shared by create and open.
lsh::LshSearchOptions PointsRuntimeOptions(const EngineConfig& config) {
  lsh::LshSearchOptions options;
  options.transform.rehash_domain = config.rehash_domain() > 0
                                        ? config.rehash_domain()
                                        : kDefaultPointsRehashDomain;
  options.transform.seed = config.seed();
  options.engine = BaseEngineOptions(config);
  options.engine.k =
      config.exact_rerank() ? CandidatePoolSize(config) : config.k();
  options.build = BuildOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

lsh::SetSearchOptions SetsRuntimeOptions(const EngineConfig& config) {
  lsh::SetSearchOptions options;
  options.transform.rehash_domain = config.rehash_domain() > 0
                                        ? config.rehash_domain()
                                        : kDefaultSetsRehashDomain;
  options.transform.seed = config.seed();
  options.engine = BaseEngineOptions(config);
  options.engine.k =
      config.exact_rerank() ? CandidatePoolSize(config) : config.k();
  options.build = BuildOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

sa::SequenceSearchOptions SequencesRuntimeOptions(const EngineConfig& config) {
  sa::SequenceSearchOptions options;
  options.ngram = config.ngram();
  options.k = config.k();
  options.candidate_k = CandidatePoolSize(config);
  options.escalate_until_exact = config.escalate_until_exact();
  options.max_candidate_k =
      std::max(config.max_candidate_k(), options.candidate_k);
  options.engine = BaseEngineOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

sa::DocumentSearchOptions DocumentsRuntimeOptions(const EngineConfig& config) {
  sa::DocumentSearchOptions options;
  options.k = config.k();
  options.engine = BaseEngineOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Searcher>> MakePointsSearcher(
    const EngineConfig& config) {
  const data::PointMatrix* points = config.points();
  if (points == nullptr) return Status::InvalidArgument("points is null");
  if (points->num_points() == 0) {
    return Status::InvalidArgument("points dataset is empty");
  }

  std::shared_ptr<const lsh::VectorLshFamily> family = config.vector_family();
  if (family == nullptr) {
    lsh::E2LshOptions lsh_options;
    lsh_options.dim = points->dim();
    lsh_options.num_functions = config.hash_functions() > 0
                                    ? config.hash_functions()
                                    : kDefaultHashFunctions;
    lsh_options.p = config.metric_p();
    lsh_options.seed = config.seed();
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::E2LshFamily> e2lsh,
                           lsh::E2LshFamily::Create(lsh_options));
    family = std::shared_ptr<const lsh::VectorLshFamily>(std::move(e2lsh));
  }

  lsh::LshSearchOptions options = PointsRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::LshSearcher> searcher,
                         lsh::LshSearcher::Create(points, family, options));
  return std::unique_ptr<Searcher>(new PointsSearcherImpl(
      points, std::move(searcher), config.k(), config.exact_rerank(),
      config.metric_p()));
}

Result<std::unique_ptr<Searcher>> MakeSetsSearcher(const EngineConfig& config) {
  const std::vector<std::vector<uint32_t>>* sets = config.sets();
  if (sets == nullptr) return Status::InvalidArgument("sets is null");
  if (sets->empty()) return Status::InvalidArgument("sets dataset is empty");

  std::shared_ptr<const lsh::SetLshFamily> family = config.set_family();
  if (family == nullptr) {
    lsh::MinHashOptions minhash;
    minhash.num_functions = config.hash_functions() > 0
                                ? config.hash_functions()
                                : kDefaultHashFunctions;
    minhash.seed = config.seed();
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::MinHashFamily> min_hash,
                           lsh::MinHashFamily::Create(minhash));
    family = std::shared_ptr<const lsh::SetLshFamily>(std::move(min_hash));
  }

  lsh::SetSearchOptions options = SetsRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::SetLshSearcher> searcher,
                         lsh::SetLshSearcher::Create(sets, family, options));
  return std::unique_ptr<Searcher>(
      new SetsSearcherImpl(sets, std::move(family), std::move(searcher),
                           config.k(), config.exact_rerank()));
}

Result<std::unique_ptr<Searcher>> MakeSequencesSearcher(
    const EngineConfig& config) {
  const std::vector<std::string>* sequences = config.sequences();
  if (sequences == nullptr) {
    return Status::InvalidArgument("sequences is null");
  }
  if (sequences->empty()) {
    return Status::InvalidArgument("sequences dataset is empty");
  }

  sa::SequenceSearchOptions options = SequencesRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<sa::SequenceSearcher> searcher,
                         sa::SequenceSearcher::Create(sequences, options));
  return std::unique_ptr<Searcher>(
      new SequencesSearcherImpl(sequences, std::move(searcher), config.k()));
}

Result<std::unique_ptr<Searcher>> MakeDocumentsSearcher(
    const EngineConfig& config) {
  const std::vector<std::vector<uint32_t>>* documents = config.documents();
  if (documents == nullptr) {
    return Status::InvalidArgument("documents is null");
  }
  if (documents->empty()) {
    return Status::InvalidArgument("documents dataset is empty");
  }

  sa::DocumentSearchOptions options = DocumentsRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<sa::DocumentSearcher> searcher,
                         sa::DocumentSearcher::Create(documents, options));
  return std::unique_ptr<Searcher>(
      new DocumentsSearcherImpl(documents, std::move(searcher)));
}

Result<std::unique_ptr<Searcher>> MakeRelationalSearcher(
    const EngineConfig& config) {
  const sa::RelationalTable* table = config.table();
  if (table == nullptr) return Status::InvalidArgument("table is null");
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::RelationalSearcher> searcher,
      sa::RelationalSearcher::Create(table, config.k(),
                                     BaseEngineOptions(config),
                                     BuildOptions(config),
                                     BackendOptions(config)));
  return std::unique_ptr<Searcher>(
      new RelationalSearcherImpl(table, std::move(searcher)));
}

Result<std::unique_ptr<Searcher>> MakeCompiledSearcher(
    const EngineConfig& config) {
  const InvertedIndex* index = config.index();
  if (index == nullptr) return Status::InvalidArgument("index is null");
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<EngineBackend> backend,
      EngineBackend::Create(index, BaseEngineOptions(config),
                            BackendOptions(config)));
  return std::unique_ptr<Searcher>(
      new CompiledSearcherImpl(index, std::move(backend)));
}

// ---------------------------------------------------------------------------
// Bundle-open factories
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Searcher>> OpenPointsSearcher(
    const EngineConfig& config, serialize::Reader* meta, InvertedIndex index) {
  const data::PointMatrix* points = config.points();
  if (points == nullptr) {
    return Status::InvalidArgument(
        "opening a points bundle requires the Points dataset binding");
  }

  uint8_t family_tag = 0;
  GENIE_RETURN_NOT_OK(meta->U8(&family_tag));
  if (family_tag != kVectorFamilyE2Lsh) {
    return Status::InvalidArgument("unknown vector LSH family in bundle");
  }
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::E2LshFamily> e2lsh,
                         lsh::E2LshFamily::Deserialize(meta));
  const uint32_t family_dim = e2lsh->options().dim;
  std::shared_ptr<const lsh::VectorLshFamily> family(std::move(e2lsh));
  GENIE_ASSIGN_OR_RETURN(lsh::LshTransformer transformer,
                         lsh::LshTransformer::Deserialize(family, meta));
  uint32_t num_objects = 0;
  uint32_t dim = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->U32(&dim));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  // A crafted bundle (valid checksum, inconsistent fields) whose family
  // dimension disagrees with the dataset dimension would otherwise only
  // surface at query time as a fatal dimension check inside RawHash.
  if (family_dim != dim) {
    return Status::InvalidArgument(
        "bundle LSH family dimension does not match the saved dataset "
        "dimension");
  }
  if (points->num_points() != num_objects || points->dim() != dim) {
    return Status::InvalidArgument(
        "rebound points dataset does not match the saved engine");
  }

  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<lsh::LshSearcher> searcher,
      lsh::LshSearcher::Restore(points, std::move(transformer),
                                std::move(index),
                                PointsRuntimeOptions(config)));
  return std::unique_ptr<Searcher>(new PointsSearcherImpl(
      points, std::move(searcher), config.k(), config.exact_rerank(),
      config.metric_p()));
}

Result<std::unique_ptr<Searcher>> OpenSetsSearcher(
    const EngineConfig& config, serialize::Reader* meta, InvertedIndex index) {
  const std::vector<std::vector<uint32_t>>* sets = config.sets();
  if (sets == nullptr) {
    return Status::InvalidArgument(
        "opening a sets bundle requires the Sets dataset binding");
  }

  uint8_t family_tag = 0;
  GENIE_RETURN_NOT_OK(meta->U8(&family_tag));
  if (family_tag != kSetFamilyMinHash) {
    return Status::InvalidArgument("unknown set LSH family in bundle");
  }
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::MinHashFamily> min_hash,
                         lsh::MinHashFamily::Deserialize(meta));
  std::shared_ptr<const lsh::SetLshFamily> family(std::move(min_hash));

  // The saved transform state overrides the config's transform knobs: the
  // reopened engine must hash exactly like the saved one.
  lsh::SetSearchOptions options = SetsRuntimeOptions(config);
  uint8_t rehash = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&options.transform.rehash_domain));
  GENIE_RETURN_NOT_OK(meta->U64(&options.transform.seed));
  GENIE_RETURN_NOT_OK(meta->U8(&rehash));
  options.transform.rehash = rehash != 0;
  std::vector<uint64_t> rehash_seeds;
  GENIE_RETURN_NOT_OK(meta->Vec(&rehash_seeds));
  uint32_t num_objects = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  if (sets->size() != num_objects) {
    return Status::InvalidArgument(
        "rebound sets dataset does not match the saved engine");
  }

  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<lsh::SetLshSearcher> searcher,
      lsh::SetLshSearcher::Restore(sets, family, options,
                                   std::move(rehash_seeds),
                                   std::move(index)));
  return std::unique_ptr<Searcher>(
      new SetsSearcherImpl(sets, std::move(family), std::move(searcher),
                           config.k(), config.exact_rerank()));
}

Result<std::unique_ptr<Searcher>> OpenSequencesSearcher(
    const EngineConfig& config, serialize::Reader* meta, InvertedIndex index) {
  const std::vector<std::string>* sequences = config.sequences();
  if (sequences == nullptr) {
    return Status::InvalidArgument(
        "opening a sequences bundle requires the Sequences dataset binding");
  }

  sa::SequenceSearchOptions options = SequencesRuntimeOptions(config);
  GENIE_RETURN_NOT_OK(meta->U32(&options.ngram));
  GENIE_ASSIGN_OR_RETURN(StringVocabulary vocab,
                         StringVocabulary::Deserialize(meta));
  uint32_t num_objects = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  if (sequences->size() != num_objects) {
    return Status::InvalidArgument(
        "rebound sequences dataset does not match the saved engine");
  }

  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::SequenceSearcher> searcher,
      sa::SequenceSearcher::Restore(sequences, options, std::move(vocab),
                                    std::move(index)));
  return std::unique_ptr<Searcher>(
      new SequencesSearcherImpl(sequences, std::move(searcher), config.k()));
}

Result<std::unique_ptr<Searcher>> OpenDocumentsSearcher(
    const EngineConfig& config, serialize::Reader* meta, InvertedIndex index) {
  const std::vector<std::vector<uint32_t>>* documents = config.documents();
  if (documents == nullptr) {
    return Status::InvalidArgument(
        "opening a documents bundle requires the Documents dataset binding");
  }

  uint32_t vocab_size = 0;
  uint32_t num_objects = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&vocab_size));
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  if (documents->size() != num_objects) {
    return Status::InvalidArgument(
        "rebound documents dataset does not match the saved engine");
  }

  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::DocumentSearcher> searcher,
      sa::DocumentSearcher::Restore(documents, DocumentsRuntimeOptions(config),
                                    vocab_size, std::move(index)));
  return std::unique_ptr<Searcher>(
      new DocumentsSearcherImpl(documents, std::move(searcher)));
}

Result<std::unique_ptr<Searcher>> OpenRelationalSearcher(
    const EngineConfig& config, serialize::Reader* meta, InvertedIndex index) {
  const sa::RelationalTable* table = config.table();
  if (table == nullptr) {
    return Status::InvalidArgument(
        "opening a relational bundle requires the Table dataset binding");
  }

  uint32_t num_rows = 0;
  std::vector<uint32_t> cardinalities;
  GENIE_RETURN_NOT_OK(meta->U32(&num_rows));
  GENIE_RETURN_NOT_OK(meta->Vec(&cardinalities));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());

  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::RelationalSearcher> searcher,
      sa::RelationalSearcher::Restore(table, config.k(), cardinalities,
                                      num_rows, std::move(index),
                                      BaseEngineOptions(config),
                                      BuildOptions(config),
                                      BackendOptions(config)));
  return std::unique_ptr<Searcher>(
      new RelationalSearcherImpl(table, std::move(searcher)));
}

Result<std::unique_ptr<Searcher>> OpenCompiledSearcher(
    const EngineConfig& config, serialize::Reader* meta, InvertedIndex index) {
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  auto impl = std::make_unique<CompiledSearcherImpl>(std::move(index));
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<EngineBackend> backend,
      EngineBackend::Create(&impl->index(), BaseEngineOptions(config),
                            BackendOptions(config)));
  impl->AdoptBackend(std::move(backend));
  return std::unique_ptr<Searcher>(std::move(impl));
}

}  // namespace genie
