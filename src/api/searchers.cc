#include "api/searcher.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "core/batch_scheduler.h"
#include "core/engine_backend.h"
#include "index/delta/delta_store.h"
#include "index/delta/mutation_controller.h"
#include "lsh/e2lsh.h"
#include "lsh/lsh_searcher.h"
#include "lsh/min_hash.h"
#include "lsh/random_binning.h"
#include "lsh/set_searcher.h"
#include "sa/document_searcher.h"
#include "sa/relational.h"
#include "sa/sequence_searcher.h"

namespace genie {
namespace {

constexpr uint32_t kDefaultHashFunctions = 64;
constexpr uint32_t kDefaultPointsRehashDomain = 8192;
constexpr uint32_t kDefaultSetsRehashDomain = 1024;

/// Bundle meta tags for the concrete LSH family types; caller-supplied
/// custom families cannot be persisted (Save fails with Unimplemented).
constexpr uint8_t kVectorFamilyE2Lsh = 1;
constexpr uint8_t kVectorFamilyRandomBinning = 2;
constexpr uint8_t kSetFamilyMinHash = 1;

MatchEngineOptions BaseEngineOptions(const EngineConfig& config) {
  MatchEngineOptions options;
  options.k = config.k();
  options.max_count = config.max_count();
  switch (config.selector()) {
    case SelectorKind::kCpq:
      options.selector = MatchEngineOptions::Selector::kCpq;
      break;
    case SelectorKind::kCountTableSpq:
      options.selector = MatchEngineOptions::Selector::kCountTableSpq;
      break;
    case SelectorKind::kBucketSelect:
      options.selector = MatchEngineOptions::Selector::kBucketSelect;
      break;
  }
  options.block_dim = config.block_dim();
  options.max_lists_per_block = config.max_lists_per_block();
  options.collect_ht_stats = config.collect_ht_stats();
  options.device = config.device();
  return options;
}

EngineBackendOptions BackendOptions(const EngineConfig& config) {
  EngineBackendOptions options;
  options.allow_multi_load = config.allow_multi_load();
  options.max_parts = config.max_parts();
  options.force_parts = config.force_parts();
  options.shard_build.max_list_length = config.max_list_length();
  options.num_devices = config.num_devices();
  options.use_planner = config.use_planner();
  options.remote = config.remote();
  return options;
}

IndexBuildOptions BuildOptions(const EngineConfig& config) {
  IndexBuildOptions options;
  options.max_list_length = config.max_list_length();
  return options;
}

/// Candidates to fetch per query for the re-rank / verify modalities.
uint32_t CandidatePoolSize(const EngineConfig& config) {
  return config.candidate_k() > 0 ? config.candidate_k()
                                  : std::max(config.k(), 32u);
}

/// Backend state captured atomically with a batch — the backend's one-lock
/// profile snapshot plus the modality's verify seconds — inside the
/// searcher's critical section. The per-call delta is computed from two of
/// these after the lock is released, so the facade never reads the backend
/// live while another thread executes.
struct BackendSnapshot {
  EngineBackend::ProfileSnapshot backend;
  double verify_s = 0;
};

BackendSnapshot Snapshot(const EngineBackend& backend, double verify_s = 0) {
  return BackendSnapshot{backend.profile_snapshot(), verify_s};
}

std::vector<DeviceProfile> DeviceCosts(
    const std::vector<MatchProfile>& devices) {
  std::vector<DeviceProfile> costs(devices.size());
  for (size_t d = 0; d < devices.size(); ++d) {
    costs[d].index_transfer_s = devices[d].index_transfer_s;
    costs[d].query_transfer_s = devices[d].query_transfer_s;
    costs[d].match_s = devices[d].match_s;
    costs[d].select_s = devices[d].select_s;
    costs[d].prepare_s = devices[d].prepare_s;
    costs[d].index_bytes = devices[d].index_bytes;
    costs[d].query_bytes = devices[d].query_bytes;
    costs[d].result_bytes = devices[d].result_bytes;
  }
  return costs;
}

std::vector<WorkerProfile> WorkerCosts(
    const std::vector<RemoteWorkerStats>& workers) {
  std::vector<WorkerProfile> costs(workers.size());
  for (size_t w = 0; w < workers.size(); ++w) {
    costs[w].address = workers[w].address;
    costs[w].calls = workers[w].calls;
    costs[w].wins = workers[w].wins;
    costs[w].failures = workers[w].failures;
    costs[w].hedged = workers[w].hedged;
    costs[w].request_bytes = workers[w].request_bytes;
    costs[w].response_bytes = workers[w].response_bytes;
    costs[w].call_s = workers[w].call_s;
    costs[w].network_s =
        std::max(0.0, workers[w].call_s - workers[w].worker_execute_s);
    costs[w].worker_match_s = workers[w].worker_match_s;
    costs[w].worker_select_s = workers[w].worker_select_s;
  }
  return costs;
}

/// Per-call worker delta: `after` minus the matching-address entry of
/// `before` (workers are keyed by address; the set only grows).
std::vector<RemoteWorkerStats> RemoteDelta(
    const std::vector<RemoteWorkerStats>& before,
    const std::vector<RemoteWorkerStats>& after) {
  std::vector<RemoteWorkerStats> delta = after;
  for (RemoteWorkerStats& worker : delta) {
    for (const RemoteWorkerStats& base : before) {
      if (base.address != worker.address) continue;
      worker.calls -= base.calls;
      worker.wins -= base.wins;
      worker.failures -= base.failures;
      worker.hedged -= base.hedged;
      worker.request_bytes -= base.request_bytes;
      worker.response_bytes -= base.response_bytes;
      worker.call_s -= base.call_s;
      worker.worker_match_s -= base.worker_match_s;
      worker.worker_select_s -= base.worker_select_s;
      worker.worker_execute_s -= base.worker_execute_s;
      break;
    }
  }
  return delta;
}

SearchProfile MakeProfile(const MatchProfile& p, double merge_s,
                          double verify_s,
                          const EngineBackend::ProfileSnapshot& facts) {
  SearchProfile profile;
  profile.index_transfer_s = p.index_transfer_s;
  profile.query_transfer_s = p.query_transfer_s;
  profile.match_s = p.match_s;
  profile.select_s = p.select_s;
  profile.merge_s = merge_s;
  profile.verify_s = verify_s;
  profile.prepare_seconds = p.prepare_s;
  profile.index_bytes = p.index_bytes;
  profile.query_bytes = p.query_bytes;
  profile.result_bytes = p.result_bytes;
  profile.used_multi_load = facts.multi_load;
  profile.parts = facts.parts;
  profile.devices = facts.num_devices;
  profile.planned = facts.plan.planned;
  profile.plan_tier = plan::TierToString(facts.plan.tier);
  profile.planned_chunk_size = facts.plan.chunk_size;
  profile.planned_pipeline_depth = facts.plan.pipeline_depth;
  return profile;
}

/// Fills result->profile with the delta between the two snapshots and
/// result->cumulative with the `after` totals.
void FillProfiles(SearchResult* result, const BackendSnapshot& before,
                  const BackendSnapshot& after) {
  MatchProfile delta = after.backend.match;
  delta.Subtract(before.backend.match);
  result->profile =
      MakeProfile(delta, after.backend.merge_s - before.backend.merge_s,
                  after.verify_s - before.verify_s, after.backend);
  result->cumulative = MakeProfile(after.backend.match, after.backend.merge_s,
                                   after.verify_s, after.backend);
  if (after.backend.remote) {
    result->cumulative.workers =
        static_cast<uint32_t>(after.backend.remote_profile.workers.size());
    result->cumulative.scatter_seconds = after.backend.remote_profile.scatter_s;
    result->cumulative.per_worker =
        WorkerCosts(after.backend.remote_profile.workers);
    result->profile.workers = result->cumulative.workers;
    result->profile.scatter_seconds =
        after.backend.remote_profile.scatter_s -
        before.backend.remote_profile.scatter_s;
    result->profile.per_worker = WorkerCosts(
        RemoteDelta(before.backend.remote_profile.workers,
                    after.backend.remote_profile.workers));
  }
  result->cumulative.per_device = DeviceCosts(after.backend.devices);
  if (before.backend.devices.size() == after.backend.devices.size()) {
    std::vector<MatchProfile> device_delta = after.backend.devices;
    for (size_t d = 0; d < device_delta.size(); ++d) {
      device_delta[d].Subtract(before.backend.devices[d]);
    }
    result->profile.per_device = DeviceCosts(device_delta);
  } else {
    // The multi-device tier appeared during this call: all of its
    // per-device cost belongs to it. If instead the tier was retired
    // mid-call (fallback to multi-load), its per-device history was folded
    // into the aggregate stage costs and no per-device attribution
    // remains — the delta's scalar fields still carry those costs.
    result->profile.per_device = DeviceCosts(after.backend.devices);
  }
}

/// MC_k of one answer list: the k-th match count when k answers exist.
/// Precondition: `hits` is in descending match-count order.
uint32_t ThresholdOf(const std::vector<Hit>& hits, uint32_t k) {
  return hits.size() >= k ? hits[k - 1].match_count : 0;
}

/// MC_k of a list in arbitrary order (verified / re-ranked answers).
uint32_t KthLargestCount(const std::vector<Hit>& hits, uint32_t k) {
  if (hits.size() < k) return 0;
  std::vector<uint32_t> counts;
  counts.reserve(hits.size());
  for (const Hit& hit : hits) counts.push_back(hit.match_count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  return counts[k - 1];
}

// ---------------------------------------------------------------------------
// Live mutation plumbing shared by the modality impls
// ---------------------------------------------------------------------------

delta::MutationOptions MutationOptionsFrom(const EngineConfig& config) {
  delta::MutationOptions options;
  options.seal_threshold = config.delta_seal_threshold();
  options.auto_compact_segments = config.auto_compact_segments();
  options.build = BuildOptions(config);
  return options;
}

MutationStats ToApiMutationStats(const delta::MutationStats& stats) {
  MutationStats out;
  out.inserts = stats.inserts;
  out.removes = stats.removes;
  out.compactions = stats.compactions;
  out.last_compact_seconds = stats.last_compact_seconds;
  out.last_pause_seconds = stats.last_pause_seconds;
  return out;
}

/// Lazily attached mutation state: a frozen engine pays nothing (no delta
/// store, no compaction thread) until the first Insert/Remove creates the
/// controller. Impls declare the host *after* their domain searcher so it
/// is destroyed first — the compaction worker joins before the backend it
/// compacts dies.
class MutationHost {
 public:
  explicit MutationHost(delta::MutationOptions options)
      : options_(std::move(options)) {}

  /// The controller, created on first use against `backend` with id
  /// watermark `base`.
  delta::MutationController& Ensure(EngineBackend* backend, ObjectId base) {
    std::lock_guard<std::mutex> lock(mu_);
    if (controller_ == nullptr) {
      controller_ = std::make_unique<delta::MutationController>(backend, base,
                                                                options_);
    }
    return *controller_;
  }

  delta::MutationController* get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return controller_.get();
  }

  bool mutated() const { return get() != nullptr; }

  uint32_t NumObjects(uint32_t base) const {
    delta::MutationController* controller = get();
    return controller == nullptr
               ? base
               : static_cast<uint32_t>(controller->next_id());
  }

  Status Remove(std::span<const ObjectId> ids, EngineBackend* backend,
                ObjectId base) {
    // Removing base objects from a never-mutated engine is valid, so the
    // controller is created here too.
    delta::MutationController& controller = Ensure(backend, base);
    for (ObjectId id : ids) GENIE_RETURN_NOT_OK(controller.Remove(id));
    return Status::OK();
  }

  Status Flush() const {
    delta::MutationController* controller = get();
    return controller == nullptr ? Status::OK() : controller->Flush();
  }

  MutationStats stats() const {
    delta::MutationController* controller = get();
    return controller == nullptr ? MutationStats{}
                                 : ToApiMutationStats(controller->stats());
  }

  std::shared_ptr<void> Pause() const {
    delta::MutationController* controller = get();
    if (controller == nullptr) return nullptr;
    return std::make_shared<delta::MutationController::Pause>(
        controller->PauseMutation());
  }

  /// Writes the delta snapshot (segments + tombstones + watermark); the
  /// caller appends its modality's side data after it.
  Status SerializeDeltaState(serialize::Writer* writer) const {
    delta::MutationController* controller = get();
    if (controller == nullptr) {
      return Status::Internal("serializing mutation state of a frozen engine");
    }
    delta::SerializeDelta(controller->delta_store()->snapshot(), writer);
    return Status::OK();
  }

  /// Bundle-open path: adopts a restored delta snapshot. Must run before
  /// the engine is visible to other threads.
  void AdoptSnapshot(const delta::DeltaSnapshot& snap, EngineBackend* backend,
                     ObjectId base) {
    delta::MutationController& controller = Ensure(backend, base);
    std::vector<ObjectId> tombstones = snap.tombstones == nullptr
                                           ? std::vector<ObjectId>{}
                                           : *snap.tombstones;
    controller.delta_store()->Restore(snap.segments, std::move(tombstones),
                                      snap.next_id);
  }

 private:
  delta::MutationOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<delta::MutationController> controller_;
};

/// Reads the v2 mutation section's delta snapshot through a staging store.
Result<delta::DeltaSnapshot> ReadDeltaSnapshot(serialize::Reader* mutation) {
  delta::DeltaStore staged(0, 1);
  GENIE_RETURN_NOT_OK(delta::DeserializeDelta(mutation, &staged));
  return staged.snapshot();
}

// ---------------------------------------------------------------------------
// Points (tau-ANN under an LSH family, Section IV)
// ---------------------------------------------------------------------------

class PointsSearcherImpl : public Searcher {
 public:
  PointsSearcherImpl(const data::PointMatrix* points,
                     std::unique_ptr<lsh::LshSearcher> searcher, uint32_t k,
                     bool rerank, uint32_t p,
                     delta::MutationOptions mutation_options)
      : points_(points), searcher_(std::move(searcher)), k_(k),
        rerank_(rerank), p_(p), host_(std::move(mutation_options)) {}

  Modality modality() const override { return Modality::kPoints; }
  uint32_t num_objects() const override {
    return host_.NumObjects(points_->num_points());
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    lsh::LshSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch, searcher_->Prepare(*request.points));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    const SearchRequest& request = prepared->request;
    std::vector<std::vector<lsh::AnnMatch>> matches;
    BackendSnapshot before, after;
    {
      // Critical section: the backend execution and its profile
      // bookkeeping. Re-ranking and hit shaping below run outside it.
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          matches, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(matches.size());
    for (size_t q = 0; q < matches.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(matches[q].size());
      for (const lsh::AnnMatch& m : matches[q]) {
        out.hits.push_back(Hit{m.id, m.match_count, m.estimated_similarity});
      }
      // MC_k over the match-count ordering, before any re-rank disturbs it.
      out.threshold = ThresholdOf(out.hits, k_);
      if (rerank_) {
        const auto query_row = request.points->row(static_cast<uint32_t>(q));
        for (Hit& hit : out.hits) {
          const double d =
              p_ == 1 ? data::L1Distance(RowAt(hit.id), query_row)
                      : data::L2Distance(RowAt(hit.id), query_row);
          hit.score = -d;
        }
        std::sort(out.hits.begin(), out.hits.end(),
                  [](const Hit& a, const Hit& b) { return a.score > b.score; });
      }
      if (out.hits.size() > k_) out.hits.resize(k_);
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    const lsh::VectorLshFamily& family = searcher_->transformer().family();
    if (const auto* e2lsh = dynamic_cast<const lsh::E2LshFamily*>(&family)) {
      writer->U8(kVectorFamilyE2Lsh);
      e2lsh->Serialize(writer);
    } else if (const auto* binning =
                   dynamic_cast<const lsh::RandomBinningFamily*>(&family)) {
      writer->U8(kVectorFamilyRandomBinning);
      binning->Serialize(writer);
    } else {
      return Status::Unimplemented(
          "only engines over the built-in E2LSH or random-binning families "
          "support Save");
    }
    searcher_->transformer().Serialize(writer);
    writer->U32(points_->num_points());
    writer->U32(points_->dim());
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    // A compaction may have swapped the backend's index; the searcher's
    // member still points at the build-time one. Save holds PauseMutation,
    // so the backend accessor is stable for the duration.
    return host_.mutated() ? &searcher_->backend().index()
                           : &searcher_->index();
  }

  Result<std::vector<ObjectId>> Insert(const InsertRequest& request) override {
    const data::PointMatrix& batch = *request.points;
    delta::MutationController& controller =
        host_.Ensure(&searcher_->backend(), points_->num_points());
    std::vector<ObjectId> ids;
    ids.reserve(batch.num_points());
    for (uint32_t i = 0; i < batch.num_points(); ++i) {
      const std::span<const float> row = batch.row(i);
      // Keyword extraction stays outside the controller's state lock.
      std::vector<Keyword> keywords = searcher_->transformer().Transform(row);
      ids.push_back(controller.Insert(keywords, [&](ObjectId) {
        std::lock_guard<std::shared_mutex> lock(data_mu_);
        appended_rows_.emplace_back(row.begin(), row.end());
      }));
    }
    return ids;
  }

  Status Remove(std::span<const ObjectId> ids) override {
    return host_.Remove(ids, &searcher_->backend(), points_->num_points());
  }

  Status Flush() override { return host_.Flush(); }
  MutationStats mutation_stats() const override { return host_.stats(); }
  std::shared_ptr<void> PauseMutation() override { return host_.Pause(); }
  std::string ExplainPlan() const override {
    return searcher_->backend().ExplainPlan();
  }

  uint32_t PlannedChunkSize() const override {
    const plan::ExecutionPlan plan = searcher_->backend().execution_plan();
    return plan.planned ? plan.chunk_size : 0;
  }

  uint64_t DataGeneration() const override {
    return searcher_->backend().data_generation();
  }

  Status SerializeMutationState(serialize::Writer* writer) const override {
    if (!host_.mutated()) return Status::OK();
    GENIE_RETURN_NOT_OK(host_.SerializeDeltaState(writer));
    std::shared_lock<std::shared_mutex> lock(data_mu_);
    writer->U32(static_cast<uint32_t>(appended_rows_.size()));
    for (const std::vector<float>& row : appended_rows_) writer->Vec(row);
    return Status::OK();
  }

  /// Bundle-open: adopt the restored delta snapshot + appended rows before
  /// the engine is visible to other threads.
  void AdoptMutationState(const delta::DeltaSnapshot& snap,
                          std::vector<std::vector<float>> rows) {
    {
      std::lock_guard<std::shared_mutex> lock(data_mu_);
      appended_rows_ = std::move(rows);
    }
    host_.AdoptSnapshot(snap, &searcher_->backend(), points_->num_points());
  }

 private:
  /// The row of any live id: base rows from the bound dataset, inserted
  /// rows from the append-only log. The span survives the unlock — a
  /// growing outer vector moves the inner vectors but never their heap
  /// buffers, and appended rows are immutable.
  std::span<const float> RowAt(uint32_t id) const {
    if (id < points_->num_points()) return points_->row(id);
    std::shared_lock<std::shared_mutex> lock(data_mu_);
    const std::vector<float>& row = appended_rows_[id - points_->num_points()];
    return std::span<const float>(row.data(), row.size());
  }

  const data::PointMatrix* points_;
  std::unique_ptr<lsh::LshSearcher> searcher_;
  std::mutex mu_;
  uint32_t k_;
  bool rerank_;
  uint32_t p_;
  // Declared after searcher_: destroyed first, joining the compaction
  // worker before the backend it compacts dies.
  MutationHost host_;
  mutable std::shared_mutex data_mu_;
  std::vector<std::vector<float>> appended_rows_;
};

// ---------------------------------------------------------------------------
// Sets (Jaccard via MinHash, Section II-B1)
// ---------------------------------------------------------------------------

class SetsSearcherImpl : public Searcher {
 public:
  SetsSearcherImpl(const std::vector<std::vector<uint32_t>>* sets,
                   std::shared_ptr<const lsh::SetLshFamily> family,
                   std::unique_ptr<lsh::SetLshSearcher> searcher, uint32_t k,
                   bool rerank, delta::MutationOptions mutation_options)
      : sets_(sets), family_(std::move(family)), searcher_(std::move(searcher)),
        k_(k), rerank_(rerank), host_(std::move(mutation_options)) {}

  Modality modality() const override { return Modality::kSets; }
  uint32_t num_objects() const override {
    return host_.NumObjects(static_cast<uint32_t>(sets_->size()));
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    lsh::SetLshSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch, searcher_->Prepare(request.sets));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    const SearchRequest& request = prepared->request;
    std::vector<std::vector<lsh::AnnMatch>> matches;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          matches, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(matches.size());
    for (size_t q = 0; q < matches.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(matches[q].size());
      for (const lsh::AnnMatch& m : matches[q]) {
        out.hits.push_back(Hit{m.id, m.match_count, m.estimated_similarity});
      }
      // MC_k over the match-count ordering, before any re-rank disturbs it.
      out.threshold = ThresholdOf(out.hits, k_);
      if (rerank_) {
        for (Hit& hit : out.hits) {
          hit.score =
              family_->CollisionProbability(SetAt(hit.id), request.sets[q]);
        }
        std::sort(out.hits.begin(), out.hits.end(),
                  [](const Hit& a, const Hit& b) { return a.score > b.score; });
      }
      if (out.hits.size() > k_) out.hits.resize(k_);
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    const auto* min_hash =
        dynamic_cast<const lsh::MinHashFamily*>(family_.get());
    if (min_hash == nullptr) {
      return Status::Unimplemented(
          "only engines over the built-in MinHash family support Save");
    }
    writer->U8(kSetFamilyMinHash);
    min_hash->Serialize(writer);
    const lsh::LshTransformOptions& transform =
        searcher_->transform_options();
    writer->U32(transform.rehash_domain);
    writer->U64(transform.seed);
    writer->U8(transform.rehash ? 1 : 0);
    writer->Vec(searcher_->rehash_seeds());
    writer->U32(static_cast<uint32_t>(sets_->size()));
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return host_.mutated() ? &searcher_->backend().index()
                           : &searcher_->index();
  }

  Result<std::vector<ObjectId>> Insert(const InsertRequest& request) override {
    delta::MutationController& controller = host_.Ensure(
        &searcher_->backend(), static_cast<ObjectId>(sets_->size()));
    std::vector<ObjectId> ids;
    ids.reserve(request.sets.size());
    for (const std::vector<uint32_t>& set : request.sets) {
      std::vector<Keyword> keywords = searcher_->Transform(set);
      ids.push_back(controller.Insert(keywords, [&](ObjectId) {
        std::lock_guard<std::shared_mutex> lock(data_mu_);
        appended_sets_.push_back(set);
      }));
    }
    return ids;
  }

  Status Remove(std::span<const ObjectId> ids) override {
    return host_.Remove(ids, &searcher_->backend(),
                        static_cast<ObjectId>(sets_->size()));
  }

  Status Flush() override { return host_.Flush(); }
  MutationStats mutation_stats() const override { return host_.stats(); }
  std::shared_ptr<void> PauseMutation() override { return host_.Pause(); }
  std::string ExplainPlan() const override {
    return searcher_->backend().ExplainPlan();
  }

  uint32_t PlannedChunkSize() const override {
    const plan::ExecutionPlan plan = searcher_->backend().execution_plan();
    return plan.planned ? plan.chunk_size : 0;
  }

  uint64_t DataGeneration() const override {
    return searcher_->backend().data_generation();
  }

  Status SerializeMutationState(serialize::Writer* writer) const override {
    if (!host_.mutated()) return Status::OK();
    GENIE_RETURN_NOT_OK(host_.SerializeDeltaState(writer));
    std::shared_lock<std::shared_mutex> lock(data_mu_);
    writer->U32(static_cast<uint32_t>(appended_sets_.size()));
    for (const std::vector<uint32_t>& set : appended_sets_) writer->Vec(set);
    return Status::OK();
  }

  void AdoptMutationState(const delta::DeltaSnapshot& snap,
                          std::vector<std::vector<uint32_t>> sets) {
    {
      std::lock_guard<std::shared_mutex> lock(data_mu_);
      appended_sets_ = std::move(sets);
    }
    host_.AdoptSnapshot(snap, &searcher_->backend(),
                        static_cast<ObjectId>(sets_->size()));
  }

 private:
  /// The elements of any live id (see PointsSearcherImpl::RowAt for why
  /// the span survives the unlock).
  std::span<const uint32_t> SetAt(uint32_t id) const {
    if (id < sets_->size()) return (*sets_)[id];
    std::shared_lock<std::shared_mutex> lock(data_mu_);
    const std::vector<uint32_t>& set = appended_sets_[id - sets_->size()];
    return std::span<const uint32_t>(set.data(), set.size());
  }

  const std::vector<std::vector<uint32_t>>* sets_;
  std::shared_ptr<const lsh::SetLshFamily> family_;
  std::unique_ptr<lsh::SetLshSearcher> searcher_;
  std::mutex mu_;
  uint32_t k_;
  bool rerank_;
  MutationHost host_;
  mutable std::shared_mutex data_mu_;
  std::vector<std::vector<uint32_t>> appended_sets_;
};

// ---------------------------------------------------------------------------
// Sequences (edit distance via ordered n-grams, Section V-A)
// ---------------------------------------------------------------------------

class SequencesSearcherImpl : public Searcher {
 public:
  SequencesSearcherImpl(const std::vector<std::string>* sequences,
                        std::unique_ptr<sa::SequenceSearcher> searcher,
                        uint32_t k, delta::MutationOptions mutation_options)
      : sequences_(sequences), searcher_(std::move(searcher)), k_(k),
        host_(std::move(mutation_options)) {}

  Modality modality() const override { return Modality::kSequences; }
  uint32_t num_objects() const override {
    return host_.NumObjects(static_cast<uint32_t>(sequences_->size()));
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    sa::SequenceSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch,
                           searcher_->Prepare(request.sequences));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    const SearchRequest& request = prepared->request;
    std::vector<sa::SequenceSearchOutcome> outcomes;
    BackendSnapshot before, after;
    {
      // Verification (Algorithm 2) — and any escalation rounds — happen
      // inside ExecutePrepared, so the verify-seconds bookkeeping shares
      // the critical section.
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend(), searcher_->verify_seconds());
      GENIE_ASSIGN_OR_RETURN(
          outcomes, searcher_->ExecutePrepared(request.sequences,
                                               std::move(prepared->batch)));
      after = Snapshot(searcher_->backend(), searcher_->verify_seconds());
    }
    SearchResult result;
    result.queries.resize(outcomes.size());
    for (size_t q = 0; q < outcomes.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(outcomes[q].knn.size());
      for (const sa::SequenceMatch& m : outcomes[q].knn) {
        out.hits.push_back(Hit{m.id, m.match_count,
                               -static_cast<double>(m.edit_distance)});
      }
      // Hits are ordered by edit distance; MC_k comes from their counts.
      out.threshold = KthLargestCount(out.hits, k_);
      out.certified_exact = outcomes[q].certified_exact;
      out.rounds = outcomes[q].rounds;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    writer->U32(searcher_->ngram());
    GENIE_RETURN_NOT_OK(searcher_->SerializeVocabulary(writer));
    writer->U32(static_cast<uint32_t>(sequences_->size()));
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return host_.mutated() ? &searcher_->backend().index()
                           : &searcher_->index();
  }

  Result<std::vector<ObjectId>> Insert(const InsertRequest& request) override {
    delta::MutationController& controller = host_.Ensure(
        &searcher_->backend(), static_cast<ObjectId>(sequences_->size()));
    std::vector<ObjectId> ids;
    ids.reserve(request.sequences.size());
    for (const std::string& sequence : request.sequences) {
      // Grows the n-gram vocabulary before the controller's state lock;
      // harmless if the insert then fails (the frozen index maps unknown
      // keywords to empty lists).
      std::vector<Keyword> keywords = searcher_->ExtractKeywords(sequence);
      ids.push_back(controller.Insert(keywords, [&](ObjectId) {
        searcher_->AppendSequence(sequence);
      }));
    }
    return ids;
  }

  Status Remove(std::span<const ObjectId> ids) override {
    return host_.Remove(ids, &searcher_->backend(),
                        static_cast<ObjectId>(sequences_->size()));
  }

  Status Flush() override { return host_.Flush(); }
  MutationStats mutation_stats() const override { return host_.stats(); }
  std::shared_ptr<void> PauseMutation() override { return host_.Pause(); }
  std::string ExplainPlan() const override {
    return searcher_->backend().ExplainPlan();
  }

  uint32_t PlannedChunkSize() const override {
    const plan::ExecutionPlan plan = searcher_->backend().execution_plan();
    return plan.planned ? plan.chunk_size : 0;
  }

  uint64_t DataGeneration() const override {
    return searcher_->backend().data_generation();
  }

  Status SerializeMutationState(serialize::Writer* writer) const override {
    if (!host_.mutated()) return Status::OK();
    GENIE_RETURN_NOT_OK(host_.SerializeDeltaState(writer));
    return searcher_->SerializeAppended(writer);
  }

  void AdoptMutationState(const delta::DeltaSnapshot& snap,
                          std::vector<std::string> appended) {
    for (std::string& sequence : appended) {
      searcher_->AppendSequence(std::move(sequence));
    }
    host_.AdoptSnapshot(snap, &searcher_->backend(),
                        static_cast<ObjectId>(sequences_->size()));
  }

 private:
  const std::vector<std::string>* sequences_;
  std::unique_ptr<sa::SequenceSearcher> searcher_;
  std::mutex mu_;
  uint32_t k_;
  MutationHost host_;
};

// ---------------------------------------------------------------------------
// Documents (inner product on word sets, Section V-B)
// ---------------------------------------------------------------------------

class DocumentsSearcherImpl : public Searcher {
 public:
  DocumentsSearcherImpl(const std::vector<std::vector<uint32_t>>* documents,
                        std::unique_ptr<sa::DocumentSearcher> searcher,
                        delta::MutationOptions mutation_options)
      : documents_(documents), searcher_(std::move(searcher)),
        host_(std::move(mutation_options)) {}

  Modality modality() const override { return Modality::kDocuments; }
  uint32_t num_objects() const override {
    return host_.NumObjects(static_cast<uint32_t>(documents_->size()));
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    sa::DocumentSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch,
                           searcher_->Prepare(request.documents));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    std::vector<QueryResult> raw;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          raw, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(raw.size());
    for (size_t q = 0; q < raw.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(raw[q].entries.size());
      for (const TopKEntry& e : raw[q].entries) {
        out.hits.push_back(Hit{e.id, e.count, static_cast<double>(e.count)});
      }
      out.threshold = raw[q].threshold;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    writer->U32(searcher_->vocab_size());
    writer->U32(static_cast<uint32_t>(documents_->size()));
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return host_.mutated() ? &searcher_->backend().index()
                           : &searcher_->index();
  }

  Result<std::vector<ObjectId>> Insert(const InsertRequest& request) override {
    delta::MutationController& controller = host_.Ensure(
        &searcher_->backend(), static_cast<ObjectId>(documents_->size()));
    std::vector<ObjectId> ids;
    ids.reserve(request.documents.size());
    for (const std::vector<uint32_t>& doc : request.documents) {
      // Documents need no side data: the match count is the whole answer,
      // so only the keywords (deduped tokens) are retained, in the delta.
      std::vector<Keyword> keywords = searcher_->ExtractKeywords(doc);
      ids.push_back(controller.Insert(keywords));
    }
    return ids;
  }

  Status Remove(std::span<const ObjectId> ids) override {
    return host_.Remove(ids, &searcher_->backend(),
                        static_cast<ObjectId>(documents_->size()));
  }

  Status Flush() override { return host_.Flush(); }
  MutationStats mutation_stats() const override { return host_.stats(); }
  std::shared_ptr<void> PauseMutation() override { return host_.Pause(); }

  std::string ExplainPlan() const override {
    return searcher_->backend().ExplainPlan();
  }

  uint32_t PlannedChunkSize() const override {
    const plan::ExecutionPlan plan = searcher_->backend().execution_plan();
    return plan.planned ? plan.chunk_size : 0;
  }

  uint64_t DataGeneration() const override {
    return searcher_->backend().data_generation();
  }

  Status SerializeMutationState(serialize::Writer* writer) const override {
    if (!host_.mutated()) return Status::OK();
    return host_.SerializeDeltaState(writer);
  }

  void AdoptMutationState(const delta::DeltaSnapshot& snap) {
    host_.AdoptSnapshot(snap, &searcher_->backend(),
                        static_cast<ObjectId>(documents_->size()));
  }

 private:
  const std::vector<std::vector<uint32_t>>* documents_;
  std::unique_ptr<sa::DocumentSearcher> searcher_;
  std::mutex mu_;
  MutationHost host_;
};

// ---------------------------------------------------------------------------
// Relational (top-k selection on range predicates, Section V-C)
// ---------------------------------------------------------------------------

class RelationalSearcherImpl : public Searcher {
 public:
  RelationalSearcherImpl(const sa::RelationalTable* table,
                         std::unique_ptr<sa::RelationalSearcher> searcher,
                         delta::MutationOptions mutation_options)
      : table_(table), searcher_(std::move(searcher)),
        host_(std::move(mutation_options)) {}

  Modality modality() const override { return Modality::kRelational; }
  uint32_t num_objects() const override {
    return host_.NumObjects(table_->num_rows());
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    sa::RelationalSearcher::PreparedBatch batch;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->batch, searcher_->Prepare(request.ranges));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    std::vector<QueryResult> raw;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(searcher_->backend());
      GENIE_ASSIGN_OR_RETURN(
          raw, searcher_->ExecutePrepared(std::move(prepared->batch)));
      after = Snapshot(searcher_->backend());
    }
    SearchResult result;
    result.queries.resize(raw.size());
    for (size_t q = 0; q < raw.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(raw[q].entries.size());
      for (const TopKEntry& e : raw[q].entries) {
        out.hits.push_back(Hit{e.id, e.count, static_cast<double>(e.count)});
      }
      out.threshold = raw[q].threshold;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    writer->U32(table_->num_rows());
    const DimValueEncoder& encoder = searcher_->encoder();
    std::vector<uint32_t> cardinalities(encoder.num_dims());
    for (uint32_t d = 0; d < encoder.num_dims(); ++d) {
      cardinalities[d] = encoder.buckets(d);
    }
    writer->Vec(cardinalities);
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return host_.mutated() ? &searcher_->backend().index()
                           : &searcher_->index();
  }

  Result<std::vector<ObjectId>> Insert(const InsertRequest& request) override {
    const DimValueEncoder& encoder = searcher_->encoder();
    // Validate the whole batch before assigning any id, so a malformed row
    // cannot leave a partially inserted batch behind.
    for (const std::vector<uint32_t>& row : request.rows) {
      if (row.size() != encoder.num_dims()) {
        return Status::InvalidArgument(
            "inserted row does not match the table's column count");
      }
      for (uint32_t c = 0; c < row.size(); ++c) {
        if (row[c] >= encoder.buckets(c)) {
          return Status::OutOfRange(
              "inserted row value outside the column's domain");
        }
      }
    }
    delta::MutationController& controller =
        host_.Ensure(&searcher_->backend(), table_->num_rows());
    std::vector<ObjectId> ids;
    ids.reserve(request.rows.size());
    std::vector<Keyword> keywords;
    for (const std::vector<uint32_t>& row : request.rows) {
      keywords.clear();
      for (uint32_t c = 0; c < row.size(); ++c) {
        keywords.push_back(encoder.EncodeUnchecked(c, row[c]));
      }
      ids.push_back(controller.Insert(keywords));
    }
    return ids;
  }

  Status Remove(std::span<const ObjectId> ids) override {
    return host_.Remove(ids, &searcher_->backend(), table_->num_rows());
  }

  Status Flush() override { return host_.Flush(); }
  MutationStats mutation_stats() const override { return host_.stats(); }
  std::shared_ptr<void> PauseMutation() override { return host_.Pause(); }

  std::string ExplainPlan() const override {
    return searcher_->backend().ExplainPlan();
  }

  uint32_t PlannedChunkSize() const override {
    const plan::ExecutionPlan plan = searcher_->backend().execution_plan();
    return plan.planned ? plan.chunk_size : 0;
  }

  uint64_t DataGeneration() const override {
    return searcher_->backend().data_generation();
  }

  Status SerializeMutationState(serialize::Writer* writer) const override {
    if (!host_.mutated()) return Status::OK();
    return host_.SerializeDeltaState(writer);
  }

  void AdoptMutationState(const delta::DeltaSnapshot& snap) {
    host_.AdoptSnapshot(snap, &searcher_->backend(), table_->num_rows());
  }

 private:
  const sa::RelationalTable* table_;
  std::unique_ptr<sa::RelationalSearcher> searcher_;
  std::mutex mu_;
  MutationHost host_;
};

// ---------------------------------------------------------------------------
// Compiled (raw Definition-2.1 queries over a caller-built index)
// ---------------------------------------------------------------------------

class CompiledSearcherImpl : public Searcher {
 public:
  CompiledSearcherImpl(const InvertedIndex* index,
                       std::unique_ptr<EngineBackend> backend,
                       delta::MutationOptions mutation_options)
      : index_(index), backend_(std::move(backend)),
        host_(std::move(mutation_options)) {}

  /// Bundle-open mode: the searcher owns the loaded index (a bundle has no
  /// caller-held index to borrow). Two-phase: construct, then create the
  /// backend over index() — the member's address is stable from here on.
  CompiledSearcherImpl(InvertedIndex owned,
                       delta::MutationOptions mutation_options)
      : owned_index_(std::move(owned)), index_(&owned_index_),
        host_(std::move(mutation_options)) {}

  void AdoptBackend(std::unique_ptr<EngineBackend> backend) {
    backend_ = std::move(backend);
  }

  const InvertedIndex& index() const { return *index_; }

  Modality modality() const override { return Modality::kCompiled; }
  uint32_t num_objects() const override {
    return host_.NumObjects(index_->num_objects());
  }

  Result<SearchResult> Search(const SearchRequest& request) override {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedChunk> chunk,
                           PrepareChunk(request));
    return ExecutePrepared(std::move(chunk));
  }

  struct Prepared : PreparedChunk {
    EngineBackend::StagedChunk staged;
  };

  Result<std::unique_ptr<PreparedChunk>> PrepareChunk(
      const SearchRequest& request) override {
    auto chunk = std::make_unique<Prepared>();
    chunk->request = request;
    GENIE_ASSIGN_OR_RETURN(chunk->staged,
                           backend_->Prepare(request.compiled));
    return std::unique_ptr<PreparedChunk>(std::move(chunk));
  }

  Result<SearchResult> ExecutePrepared(
      std::unique_ptr<PreparedChunk> chunk) override {
    auto* prepared = static_cast<Prepared*>(chunk.get());
    std::vector<QueryResult> raw;
    BackendSnapshot before, after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      before = Snapshot(*backend_);
      GENIE_ASSIGN_OR_RETURN(raw,
                             backend_->Execute(std::move(prepared->staged)));
      after = Snapshot(*backend_);
    }
    SearchResult result;
    result.queries.resize(raw.size());
    for (size_t q = 0; q < raw.size(); ++q) {
      QueryHits& out = result.queries[q];
      out.hits.reserve(raw[q].entries.size());
      for (const TopKEntry& e : raw[q].entries) {
        out.hits.push_back(Hit{e.id, e.count, static_cast<double>(e.count)});
      }
      out.threshold = raw[q].threshold;
    }
    FillProfiles(&result, before, after);
    return result;
  }

  uint32_t DeriveChunkSize(const SearchRequest& request,
                           double memory_fraction) const override {
    const uint32_t max_count =
        backend_->options().max_count > 0
            ? backend_->options().max_count
            : MatchEngine::DeriveMaxCount(request.compiled);
    const uint64_t per_query = MatchEngine::DeviceBytesPerQuery(
        backend_->index().num_objects(), backend_->options(), max_count);
    const EngineBackend::BatchBudget budget = backend_->batch_budget();
    return DeriveLargeBatchSize(budget.capacity_bytes, budget.allocated_bytes,
                                per_query, memory_fraction);
  }

  Status SerializeBundleMeta(serialize::Writer* writer) const override {
    (void)writer;  // the index is the whole state
    return Status::OK();
  }

  const InvertedIndex* BundleIndex() const override {
    return host_.mutated() ? &backend_->index() : index_;
  }

  Result<std::vector<ObjectId>> Insert(const InsertRequest& request) override {
    delta::MutationController& controller =
        host_.Ensure(backend_.get(), index_->num_objects());
    std::vector<ObjectId> ids;
    ids.reserve(request.objects.size());
    for (const std::vector<Keyword>& keywords : request.objects) {
      ids.push_back(controller.Insert(keywords));
    }
    return ids;
  }

  Status Remove(std::span<const ObjectId> ids) override {
    return host_.Remove(ids, backend_.get(), index_->num_objects());
  }

  Status Flush() override { return host_.Flush(); }
  MutationStats mutation_stats() const override { return host_.stats(); }
  std::shared_ptr<void> PauseMutation() override { return host_.Pause(); }

  std::string ExplainPlan() const override { return backend_->ExplainPlan(); }

  uint32_t PlannedChunkSize() const override {
    const plan::ExecutionPlan plan = backend_->execution_plan();
    return plan.planned ? plan.chunk_size : 0;
  }

  uint64_t DataGeneration() const override {
    return backend_->data_generation();
  }

  Status SerializeMutationState(serialize::Writer* writer) const override {
    if (!host_.mutated()) return Status::OK();
    return host_.SerializeDeltaState(writer);
  }

  void AdoptMutationState(const delta::DeltaSnapshot& snap) {
    host_.AdoptSnapshot(snap, backend_.get(), index_->num_objects());
  }

 private:
  InvertedIndex owned_index_;
  const InvertedIndex* index_;
  std::unique_ptr<EngineBackend> backend_;
  std::mutex mu_;
  // Destroyed before backend_: the compaction worker joins first.
  MutationHost host_;
};

/// The runtime (non-transform) LshSearchOptions shared by create and open.
lsh::LshSearchOptions PointsRuntimeOptions(const EngineConfig& config) {
  lsh::LshSearchOptions options;
  options.transform.rehash_domain = config.rehash_domain() > 0
                                        ? config.rehash_domain()
                                        : kDefaultPointsRehashDomain;
  options.transform.seed = config.seed();
  options.engine = BaseEngineOptions(config);
  options.engine.k =
      config.exact_rerank() ? CandidatePoolSize(config) : config.k();
  options.build = BuildOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

lsh::SetSearchOptions SetsRuntimeOptions(const EngineConfig& config) {
  lsh::SetSearchOptions options;
  options.transform.rehash_domain = config.rehash_domain() > 0
                                        ? config.rehash_domain()
                                        : kDefaultSetsRehashDomain;
  options.transform.seed = config.seed();
  options.engine = BaseEngineOptions(config);
  options.engine.k =
      config.exact_rerank() ? CandidatePoolSize(config) : config.k();
  options.build = BuildOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

sa::SequenceSearchOptions SequencesRuntimeOptions(const EngineConfig& config) {
  sa::SequenceSearchOptions options;
  options.ngram = config.ngram();
  options.k = config.k();
  options.candidate_k = CandidatePoolSize(config);
  options.escalate_until_exact = config.escalate_until_exact();
  options.max_candidate_k =
      std::max(config.max_candidate_k(), options.candidate_k);
  options.engine = BaseEngineOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

sa::DocumentSearchOptions DocumentsRuntimeOptions(const EngineConfig& config) {
  sa::DocumentSearchOptions options;
  options.k = config.k();
  options.engine = BaseEngineOptions(config);
  options.backend = BackendOptions(config);
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Searcher>> MakePointsSearcher(
    const EngineConfig& config) {
  const data::PointMatrix* points = config.points();
  if (points == nullptr) return Status::InvalidArgument("points is null");
  if (points->num_points() == 0) {
    return Status::InvalidArgument("points dataset is empty");
  }

  std::shared_ptr<const lsh::VectorLshFamily> family = config.vector_family();
  if (family == nullptr) {
    lsh::E2LshOptions lsh_options;
    lsh_options.dim = points->dim();
    lsh_options.num_functions = config.hash_functions() > 0
                                    ? config.hash_functions()
                                    : kDefaultHashFunctions;
    lsh_options.p = config.metric_p();
    lsh_options.seed = config.seed();
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::E2LshFamily> e2lsh,
                           lsh::E2LshFamily::Create(lsh_options));
    family = std::shared_ptr<const lsh::VectorLshFamily>(std::move(e2lsh));
  }

  lsh::LshSearchOptions options = PointsRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::LshSearcher> searcher,
                         lsh::LshSearcher::Create(points, family, options));
  return std::unique_ptr<Searcher>(new PointsSearcherImpl(
      points, std::move(searcher), config.k(), config.exact_rerank(),
      config.metric_p(), MutationOptionsFrom(config)));
}

Result<std::unique_ptr<Searcher>> MakeSetsSearcher(const EngineConfig& config) {
  const std::vector<std::vector<uint32_t>>* sets = config.sets();
  if (sets == nullptr) return Status::InvalidArgument("sets is null");
  if (sets->empty()) return Status::InvalidArgument("sets dataset is empty");

  std::shared_ptr<const lsh::SetLshFamily> family = config.set_family();
  if (family == nullptr) {
    lsh::MinHashOptions minhash;
    minhash.num_functions = config.hash_functions() > 0
                                ? config.hash_functions()
                                : kDefaultHashFunctions;
    minhash.seed = config.seed();
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::MinHashFamily> min_hash,
                           lsh::MinHashFamily::Create(minhash));
    family = std::shared_ptr<const lsh::SetLshFamily>(std::move(min_hash));
  }

  lsh::SetSearchOptions options = SetsRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::SetLshSearcher> searcher,
                         lsh::SetLshSearcher::Create(sets, family, options));
  return std::unique_ptr<Searcher>(
      new SetsSearcherImpl(sets, std::move(family), std::move(searcher),
                           config.k(), config.exact_rerank(),
                           MutationOptionsFrom(config)));
}

Result<std::unique_ptr<Searcher>> MakeSequencesSearcher(
    const EngineConfig& config) {
  const std::vector<std::string>* sequences = config.sequences();
  if (sequences == nullptr) {
    return Status::InvalidArgument("sequences is null");
  }
  if (sequences->empty()) {
    return Status::InvalidArgument("sequences dataset is empty");
  }

  sa::SequenceSearchOptions options = SequencesRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<sa::SequenceSearcher> searcher,
                         sa::SequenceSearcher::Create(sequences, options));
  return std::unique_ptr<Searcher>(
      new SequencesSearcherImpl(sequences, std::move(searcher), config.k(),
                                MutationOptionsFrom(config)));
}

Result<std::unique_ptr<Searcher>> MakeDocumentsSearcher(
    const EngineConfig& config) {
  const std::vector<std::vector<uint32_t>>* documents = config.documents();
  if (documents == nullptr) {
    return Status::InvalidArgument("documents is null");
  }
  if (documents->empty()) {
    return Status::InvalidArgument("documents dataset is empty");
  }

  sa::DocumentSearchOptions options = DocumentsRuntimeOptions(config);
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<sa::DocumentSearcher> searcher,
                         sa::DocumentSearcher::Create(documents, options));
  return std::unique_ptr<Searcher>(new DocumentsSearcherImpl(
      documents, std::move(searcher), MutationOptionsFrom(config)));
}

Result<std::unique_ptr<Searcher>> MakeRelationalSearcher(
    const EngineConfig& config) {
  const sa::RelationalTable* table = config.table();
  if (table == nullptr) return Status::InvalidArgument("table is null");
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::RelationalSearcher> searcher,
      sa::RelationalSearcher::Create(table, config.k(),
                                     BaseEngineOptions(config),
                                     BuildOptions(config),
                                     BackendOptions(config)));
  return std::unique_ptr<Searcher>(new RelationalSearcherImpl(
      table, std::move(searcher), MutationOptionsFrom(config)));
}

Result<std::unique_ptr<Searcher>> MakeCompiledSearcher(
    const EngineConfig& config) {
  const InvertedIndex* index = config.index();
  if (index == nullptr) return Status::InvalidArgument("index is null");
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<EngineBackend> backend,
      EngineBackend::Create(index, BaseEngineOptions(config),
                            BackendOptions(config)));
  return std::unique_ptr<Searcher>(new CompiledSearcherImpl(
      index, std::move(backend), MutationOptionsFrom(config)));
}

// ---------------------------------------------------------------------------
// Bundle-open factories
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Searcher>> OpenPointsSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats) {
  const data::PointMatrix* points = config.points();
  if (points == nullptr) {
    return Status::InvalidArgument(
        "opening a points bundle requires the Points dataset binding");
  }

  uint8_t family_tag = 0;
  GENIE_RETURN_NOT_OK(meta->U8(&family_tag));
  uint32_t family_dim = 0;
  std::shared_ptr<const lsh::VectorLshFamily> family;
  if (family_tag == kVectorFamilyE2Lsh) {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::E2LshFamily> e2lsh,
                           lsh::E2LshFamily::Deserialize(meta));
    family_dim = e2lsh->options().dim;
    family = std::shared_ptr<const lsh::VectorLshFamily>(std::move(e2lsh));
  } else if (family_tag == kVectorFamilyRandomBinning) {
    GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::RandomBinningFamily> binning,
                           lsh::RandomBinningFamily::Deserialize(meta));
    family_dim = binning->options().dim;
    family = std::shared_ptr<const lsh::VectorLshFamily>(std::move(binning));
  } else {
    return Status::InvalidArgument("unknown vector LSH family in bundle");
  }
  GENIE_ASSIGN_OR_RETURN(lsh::LshTransformer transformer,
                         lsh::LshTransformer::Deserialize(family, meta));
  uint32_t num_objects = 0;
  uint32_t dim = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->U32(&dim));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  // A crafted bundle (valid checksum, inconsistent fields) whose family
  // dimension disagrees with the dataset dimension would otherwise only
  // surface at query time as a fatal dimension check inside RawHash.
  if (family_dim != dim) {
    return Status::InvalidArgument(
        "bundle LSH family dimension does not match the saved dataset "
        "dimension");
  }
  if (points->num_points() != num_objects || points->dim() != dim) {
    return Status::InvalidArgument(
        "rebound points dataset does not match the saved engine");
  }

  delta::DeltaSnapshot snap;
  std::vector<std::vector<float>> appended_rows;
  uint32_t appended = 0;
  if (mutation != nullptr) {
    GENIE_ASSIGN_OR_RETURN(snap, ReadDeltaSnapshot(mutation));
    uint32_t count = 0;
    GENIE_RETURN_NOT_OK(mutation->U32(&count));
    appended_rows.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::vector<float> row;
      GENIE_RETURN_NOT_OK(mutation->Vec(&row));
      if (row.size() != points->dim()) {
        return Status::InvalidArgument(
            "bundle mutation row dimension does not match the dataset");
      }
      appended_rows.push_back(std::move(row));
    }
    GENIE_RETURN_NOT_OK(mutation->ExpectEnd());
    if (snap.next_id != static_cast<uint64_t>(num_objects) + count) {
      return Status::InvalidArgument(
          "bundle mutation watermark does not match its appended side data");
    }
    appended = count;
  }

  lsh::LshSearchOptions options = PointsRuntimeOptions(config);
  options.backend.index_stats = stats;
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<lsh::LshSearcher> searcher,
      lsh::LshSearcher::Restore(points, std::move(transformer),
                                std::move(index), options, appended));
  auto impl = std::make_unique<PointsSearcherImpl>(
      points, std::move(searcher), config.k(), config.exact_rerank(),
      config.metric_p(), MutationOptionsFrom(config));
  if (mutation != nullptr) {
    impl->AdoptMutationState(snap, std::move(appended_rows));
  }
  return std::unique_ptr<Searcher>(std::move(impl));
}

Result<std::unique_ptr<Searcher>> OpenSetsSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats) {
  const std::vector<std::vector<uint32_t>>* sets = config.sets();
  if (sets == nullptr) {
    return Status::InvalidArgument(
        "opening a sets bundle requires the Sets dataset binding");
  }

  uint8_t family_tag = 0;
  GENIE_RETURN_NOT_OK(meta->U8(&family_tag));
  if (family_tag != kSetFamilyMinHash) {
    return Status::InvalidArgument("unknown set LSH family in bundle");
  }
  GENIE_ASSIGN_OR_RETURN(std::unique_ptr<lsh::MinHashFamily> min_hash,
                         lsh::MinHashFamily::Deserialize(meta));
  std::shared_ptr<const lsh::SetLshFamily> family(std::move(min_hash));

  // The saved transform state overrides the config's transform knobs: the
  // reopened engine must hash exactly like the saved one.
  lsh::SetSearchOptions options = SetsRuntimeOptions(config);
  uint8_t rehash = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&options.transform.rehash_domain));
  GENIE_RETURN_NOT_OK(meta->U64(&options.transform.seed));
  GENIE_RETURN_NOT_OK(meta->U8(&rehash));
  options.transform.rehash = rehash != 0;
  std::vector<uint64_t> rehash_seeds;
  GENIE_RETURN_NOT_OK(meta->Vec(&rehash_seeds));
  uint32_t num_objects = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  if (sets->size() != num_objects) {
    return Status::InvalidArgument(
        "rebound sets dataset does not match the saved engine");
  }

  delta::DeltaSnapshot snap;
  std::vector<std::vector<uint32_t>> appended_sets;
  uint32_t appended = 0;
  if (mutation != nullptr) {
    GENIE_ASSIGN_OR_RETURN(snap, ReadDeltaSnapshot(mutation));
    uint32_t count = 0;
    GENIE_RETURN_NOT_OK(mutation->U32(&count));
    appended_sets.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::vector<uint32_t> set;
      GENIE_RETURN_NOT_OK(mutation->Vec(&set));
      appended_sets.push_back(std::move(set));
    }
    GENIE_RETURN_NOT_OK(mutation->ExpectEnd());
    if (snap.next_id != static_cast<uint64_t>(num_objects) + count) {
      return Status::InvalidArgument(
          "bundle mutation watermark does not match its appended side data");
    }
    appended = count;
  }

  options.backend.index_stats = stats;
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<lsh::SetLshSearcher> searcher,
      lsh::SetLshSearcher::Restore(sets, family, options,
                                   std::move(rehash_seeds),
                                   std::move(index), appended));
  auto impl = std::make_unique<SetsSearcherImpl>(
      sets, std::move(family), std::move(searcher), config.k(),
      config.exact_rerank(), MutationOptionsFrom(config));
  if (mutation != nullptr) {
    impl->AdoptMutationState(snap, std::move(appended_sets));
  }
  return std::unique_ptr<Searcher>(std::move(impl));
}

Result<std::unique_ptr<Searcher>> OpenSequencesSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats) {
  const std::vector<std::string>* sequences = config.sequences();
  if (sequences == nullptr) {
    return Status::InvalidArgument(
        "opening a sequences bundle requires the Sequences dataset binding");
  }

  sa::SequenceSearchOptions options = SequencesRuntimeOptions(config);
  GENIE_RETURN_NOT_OK(meta->U32(&options.ngram));
  GENIE_ASSIGN_OR_RETURN(StringVocabulary vocab,
                         StringVocabulary::Deserialize(meta));
  uint32_t num_objects = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  if (sequences->size() != num_objects) {
    return Status::InvalidArgument(
        "rebound sequences dataset does not match the saved engine");
  }

  delta::DeltaSnapshot snap;
  std::vector<std::string> appended_sequences;
  uint32_t appended = 0;
  if (mutation != nullptr) {
    GENIE_ASSIGN_OR_RETURN(snap, ReadDeltaSnapshot(mutation));
    uint32_t count = 0;
    GENIE_RETURN_NOT_OK(mutation->U32(&count));
    appended_sequences.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string sequence;
      GENIE_RETURN_NOT_OK(mutation->String(&sequence));
      appended_sequences.push_back(std::move(sequence));
    }
    GENIE_RETURN_NOT_OK(mutation->ExpectEnd());
    if (snap.next_id != static_cast<uint64_t>(num_objects) + count) {
      return Status::InvalidArgument(
          "bundle mutation watermark does not match its appended side data");
    }
    appended = count;
  }

  options.backend.index_stats = stats;
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::SequenceSearcher> searcher,
      sa::SequenceSearcher::Restore(sequences, options, std::move(vocab),
                                    std::move(index), appended));
  auto impl = std::make_unique<SequencesSearcherImpl>(
      sequences, std::move(searcher), config.k(), MutationOptionsFrom(config));
  if (mutation != nullptr) {
    impl->AdoptMutationState(snap, std::move(appended_sequences));
  }
  return std::unique_ptr<Searcher>(std::move(impl));
}

Result<std::unique_ptr<Searcher>> OpenDocumentsSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats) {
  const std::vector<std::vector<uint32_t>>* documents = config.documents();
  if (documents == nullptr) {
    return Status::InvalidArgument(
        "opening a documents bundle requires the Documents dataset binding");
  }

  uint32_t vocab_size = 0;
  uint32_t num_objects = 0;
  GENIE_RETURN_NOT_OK(meta->U32(&vocab_size));
  GENIE_RETURN_NOT_OK(meta->U32(&num_objects));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());
  if (documents->size() != num_objects) {
    return Status::InvalidArgument(
        "rebound documents dataset does not match the saved engine");
  }

  delta::DeltaSnapshot snap;
  uint32_t appended = 0;
  if (mutation != nullptr) {
    GENIE_ASSIGN_OR_RETURN(snap, ReadDeltaSnapshot(mutation));
    GENIE_RETURN_NOT_OK(mutation->ExpectEnd());
    // Documents carry no side data: the watermark alone tells how many
    // objects were appended.
    if (snap.next_id < num_objects) {
      return Status::InvalidArgument(
          "bundle mutation watermark is below the saved dataset size");
    }
    appended = static_cast<uint32_t>(snap.next_id - num_objects);
  }

  sa::DocumentSearchOptions options = DocumentsRuntimeOptions(config);
  options.backend.index_stats = stats;
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::DocumentSearcher> searcher,
      sa::DocumentSearcher::Restore(documents, options, vocab_size,
                                    std::move(index), appended));
  auto impl = std::make_unique<DocumentsSearcherImpl>(
      documents, std::move(searcher), MutationOptionsFrom(config));
  if (mutation != nullptr) impl->AdoptMutationState(snap);
  return std::unique_ptr<Searcher>(std::move(impl));
}

Result<std::unique_ptr<Searcher>> OpenRelationalSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats) {
  const sa::RelationalTable* table = config.table();
  if (table == nullptr) {
    return Status::InvalidArgument(
        "opening a relational bundle requires the Table dataset binding");
  }

  uint32_t num_rows = 0;
  std::vector<uint32_t> cardinalities;
  GENIE_RETURN_NOT_OK(meta->U32(&num_rows));
  GENIE_RETURN_NOT_OK(meta->Vec(&cardinalities));
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());

  delta::DeltaSnapshot snap;
  uint32_t appended = 0;
  if (mutation != nullptr) {
    GENIE_ASSIGN_OR_RETURN(snap, ReadDeltaSnapshot(mutation));
    GENIE_RETURN_NOT_OK(mutation->ExpectEnd());
    // Rows carry no side data (the keywords in the delta are the row).
    if (snap.next_id < num_rows) {
      return Status::InvalidArgument(
          "bundle mutation watermark is below the saved table size");
    }
    appended = static_cast<uint32_t>(snap.next_id - num_rows);
  }

  EngineBackendOptions backend_options = BackendOptions(config);
  backend_options.index_stats = stats;
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<sa::RelationalSearcher> searcher,
      sa::RelationalSearcher::Restore(table, config.k(), cardinalities,
                                      num_rows, std::move(index),
                                      BaseEngineOptions(config),
                                      BuildOptions(config),
                                      backend_options, appended));
  auto impl = std::make_unique<RelationalSearcherImpl>(
      table, std::move(searcher), MutationOptionsFrom(config));
  if (mutation != nullptr) impl->AdoptMutationState(snap);
  return std::unique_ptr<Searcher>(std::move(impl));
}

Result<std::unique_ptr<Searcher>> OpenCompiledSearcher(
    const EngineConfig& config, serialize::Reader* meta,
    serialize::Reader* mutation, InvertedIndex index,
    const plan::IndexStats* stats) {
  GENIE_RETURN_NOT_OK(meta->ExpectEnd());

  delta::DeltaSnapshot snap;
  if (mutation != nullptr) {
    GENIE_ASSIGN_OR_RETURN(snap, ReadDeltaSnapshot(mutation));
    GENIE_RETURN_NOT_OK(mutation->ExpectEnd());
    if (snap.next_id < index.num_objects()) {
      return Status::InvalidArgument(
          "bundle mutation watermark is below the saved index size");
    }
  }

  auto impl = std::make_unique<CompiledSearcherImpl>(
      std::move(index), MutationOptionsFrom(config));
  EngineBackendOptions backend_options = BackendOptions(config);
  backend_options.index_stats = stats;
  GENIE_ASSIGN_OR_RETURN(
      std::unique_ptr<EngineBackend> backend,
      EngineBackend::Create(&impl->index(), BaseEngineOptions(config),
                            backend_options));
  impl->AdoptBackend(std::move(backend));
  if (mutation != nullptr) impl->AdoptMutationState(snap);
  return std::unique_ptr<Searcher>(std::move(impl));
}

}  // namespace genie
