#pragma once

/// \file engine.h
/// The single entry point to GENIE: a fluent EngineConfig binds one dataset
/// (any modality), Engine::Create builds the transform + inverted index and
/// picks the backend, and Engine::Search answers batches with the unified
/// SearchResult shape. Backend selection is automatic — when the index
/// exceeds device memory the engine transparently shards it and answers
/// through multiple loading (Section III-D); no caller intervention.
///
///   auto engine = genie::Engine::Create(
///       genie::EngineConfig().Table(&table).K(5));
///   auto result = (*engine)->Search(genie::SearchRequest::Ranges(batch));

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "api/types.h"
#include "common/result.h"
#include "index/inverted_index.h"
#include "lsh/lsh_family.h"
#include "net/remote_options.h"
#include "sim/device.h"

namespace genie {

class Searcher;
namespace serve {
class RequestScheduler;
}  // namespace serve

/// Knobs of Engine::Save.
struct BundleSaveOptions {
  /// Persist the postings varint-delta compressed (typically 2-4x smaller;
  /// requires ascending postings per (sub)list, which holds for every
  /// facade-built engine — objects are indexed in id order).
  bool compress_postings = false;
};

/// Fluent configuration. Exactly one dataset binding selects the modality;
/// everything else has workload-appropriate defaults. Bound datasets must
/// outlive the Engine.
class EngineConfig {
 public:
  // --- Dataset bindings (each selects the modality). -----------------------
  EngineConfig& Points(const data::PointMatrix* points);
  EngineConfig& Sets(const std::vector<std::vector<uint32_t>>* sets);
  EngineConfig& Sequences(const std::vector<std::string>* sequences);
  EngineConfig& Documents(const std::vector<std::vector<uint32_t>>* documents);
  EngineConfig& Table(const sa::RelationalTable* table);
  EngineConfig& Index(const InvertedIndex* index);

  // --- Common knobs. -------------------------------------------------------
  /// Results returned per query (default 10).
  EngineConfig& K(uint32_t k);
  /// Candidates fetched from the match-count engine before re-ranking /
  /// verification (points, sets, sequences). 0 = max(k, 32).
  EngineConfig& CandidateK(uint32_t candidate_k);
  /// c-PQ (GENIE) vs Count Table + SPQ (GEN-SPQ) selection.
  EngineConfig& Selector(SelectorKind selector);
  /// Device to run on; nullptr = sim::Device::Default().
  EngineConfig& Device(sim::Device* device);
  /// Match-count upper bound; 0 = derive per batch / per modality.
  EngineConfig& MaxCount(uint32_t max_count);
  /// Load-balance split threshold for long postings lists (Section III-B1);
  /// 0 disables splitting.
  EngineConfig& MaxListLength(uint32_t max_list_length);
  EngineConfig& BlockDim(uint32_t block_dim);
  EngineConfig& MaxListsPerBlock(uint32_t max_lists);
  EngineConfig& CollectHtStats(bool collect);
  EngineConfig& Seed(uint64_t seed);

  // --- LSH knobs (points / sets). ------------------------------------------
  /// Family override; when unset, points default to E2LSH over the dataset
  /// dimension and sets default to MinHash.
  EngineConfig& VectorFamily(std::shared_ptr<const lsh::VectorLshFamily> family);
  EngineConfig& SetFamily(std::shared_ptr<const lsh::SetLshFamily> family);
  /// Hash-function count m for the default families (0 = 64; size via
  /// lsh::MinHashFunctions(eps, delta) for a principled m).
  EngineConfig& HashFunctions(uint32_t m);
  /// Re-hash domain D of Fig. 7 (0 = modality default: 8192 points,
  /// 1024 sets).
  EngineConfig& RehashDomain(uint32_t domain);
  /// l_p metric of the default E2LSH family and of exact re-ranking.
  EngineConfig& MetricP(uint32_t p);
  /// Re-rank the match-count candidates by exact distance (points) or exact
  /// Jaccard similarity (sets) before returning the top k.
  EngineConfig& ExactRerank(bool rerank);

  // --- Sequence knobs. -----------------------------------------------------
  EngineConfig& Ngram(uint32_t n);
  /// Multi-round search: double K until Theorem 5.2 certifies exactness.
  EngineConfig& EscalateUntilExact(bool escalate);
  EngineConfig& MaxCandidateK(uint32_t max_candidate_k);

  // --- Mutation knobs (Engine::Insert / Remove / Flush). -------------------
  /// Inserted objects per in-memory delta segment before the active
  /// segment seals (default 128).
  EngineConfig& DeltaSealThreshold(uint32_t objects);
  /// Sealed delta segments that trigger a background compaction of
  /// delta+main into a fresh immutable index; 0 disables the automatic
  /// trigger — Flush() still compacts (default 4).
  EngineConfig& AutoCompactSegments(uint32_t segments);

  // --- Backend knobs. ------------------------------------------------------
  /// Permit the automatic multiple-loading fallback (default true).
  EngineConfig& AllowMultiLoad(bool allow);
  /// Cap on fallback parts.
  EngineConfig& MaxParts(uint32_t max_parts);
  /// Force multiple loading with exactly this many parts (0 = automatic).
  EngineConfig& ForceParts(uint32_t parts);
  /// Shard the index across n simulated devices and execute batches on all
  /// of them in parallel (space multiplexing; default 1 = the classic
  /// single-device tiers). Each device is configured like the device bound
  /// with Device() — or the process default — with its own worker pool and
  /// memory accounting. Results are identical for every n.
  EngineConfig& Devices(uint32_t n);
  /// Decide tier / part boundaries / placement / chunk size through the
  /// cost-model query planner (default true). false = the legacy
  /// try-and-escalate decisions with uniform object-range sharding; results
  /// are identical either way — only the schedule differs.
  EngineConfig& UsePlanner(bool use);
  /// Scatter the index across remote worker processes (one shard per
  /// endpoint, postings-volume balanced) and answer batches by
  /// scatter-gather over the RPC protocol in src/net/. Loopback addresses
  /// ("loopback/<n>", net::RemoteOptions::Loopback) run in-process workers
  /// — deterministic and CI-friendly; "host:port" addresses dial real
  /// genie_worker processes. Mutually exclusive with Devices(n > 1).
  /// Results are identical to the local tiers for every shard count.
  EngineConfig& Remote(net::RemoteOptions remote);

  // --- Serving knobs. ------------------------------------------------------
  /// Route Search / SearchStream / SearchAsync through the serving layer:
  /// concurrent submissions are coalesced into device-sized super-batches
  /// (continuous batching under options.max_queue_delay_s), answers of hot
  /// queries come from a generation-checked result cache, and tenants
  /// (SearchRequest::Tenant) share the device under weighted deficit
  /// round-robin with ResourceExhausted backpressure. Off (the default)
  /// keeps the legacy per-call path bit-for-bit; on, the answers are still
  /// identical — only latency, throughput and the SearchProfile serving
  /// fields change.
  EngineConfig& Serving(ServingOptions options);

  // --- Getters. ------------------------------------------------------------
  bool has_modality() const { return has_modality_; }
  Modality modality() const { return modality_; }
  const data::PointMatrix* points() const { return points_; }
  const std::vector<std::vector<uint32_t>>* sets() const { return sets_; }
  const std::vector<std::string>* sequences() const { return sequences_; }
  const std::vector<std::vector<uint32_t>>* documents() const {
    return documents_;
  }
  const sa::RelationalTable* table() const { return table_; }
  const InvertedIndex* index() const { return index_; }

  uint32_t k() const { return k_; }
  uint32_t candidate_k() const { return candidate_k_; }
  SelectorKind selector() const { return selector_; }
  sim::Device* device() const { return device_; }
  uint32_t max_count() const { return max_count_; }
  uint32_t max_list_length() const { return max_list_length_; }
  uint32_t block_dim() const { return block_dim_; }
  uint32_t max_lists_per_block() const { return max_lists_per_block_; }
  bool collect_ht_stats() const { return collect_ht_stats_; }
  uint64_t seed() const { return seed_; }

  const std::shared_ptr<const lsh::VectorLshFamily>& vector_family() const {
    return vector_family_;
  }
  const std::shared_ptr<const lsh::SetLshFamily>& set_family() const {
    return set_family_;
  }
  uint32_t hash_functions() const { return hash_functions_; }
  uint32_t rehash_domain() const { return rehash_domain_; }
  uint32_t metric_p() const { return metric_p_; }
  bool exact_rerank() const { return exact_rerank_; }

  uint32_t ngram() const { return ngram_; }
  bool escalate_until_exact() const { return escalate_until_exact_; }
  uint32_t max_candidate_k() const { return max_candidate_k_; }

  uint32_t delta_seal_threshold() const { return delta_seal_threshold_; }
  uint32_t auto_compact_segments() const { return auto_compact_segments_; }

  bool allow_multi_load() const { return allow_multi_load_; }
  uint32_t max_parts() const { return max_parts_; }
  uint32_t force_parts() const { return force_parts_; }
  uint32_t num_devices() const { return num_devices_; }
  bool use_planner() const { return use_planner_; }
  const net::RemoteOptions& remote() const { return remote_; }

  bool serving_enabled() const { return serving_enabled_; }
  const ServingOptions& serving() const { return serving_; }

 private:
  EngineConfig& Bind(Modality modality);

  bool has_modality_ = false;
  Modality modality_ = Modality::kPoints;
  const data::PointMatrix* points_ = nullptr;
  const std::vector<std::vector<uint32_t>>* sets_ = nullptr;
  const std::vector<std::string>* sequences_ = nullptr;
  const std::vector<std::vector<uint32_t>>* documents_ = nullptr;
  const sa::RelationalTable* table_ = nullptr;
  const InvertedIndex* index_ = nullptr;

  uint32_t k_ = 10;
  uint32_t candidate_k_ = 0;
  SelectorKind selector_ = SelectorKind::kCpq;
  sim::Device* device_ = nullptr;
  uint32_t max_count_ = 0;
  uint32_t max_list_length_ = 0;
  uint32_t block_dim_ = 8;
  uint32_t max_lists_per_block_ = 0;
  bool collect_ht_stats_ = false;
  uint64_t seed_ = 7;

  std::shared_ptr<const lsh::VectorLshFamily> vector_family_;
  std::shared_ptr<const lsh::SetLshFamily> set_family_;
  uint32_t hash_functions_ = 0;
  uint32_t rehash_domain_ = 0;
  uint32_t metric_p_ = 2;
  bool exact_rerank_ = false;

  uint32_t ngram_ = 3;
  bool escalate_until_exact_ = false;
  uint32_t max_candidate_k_ = 256;

  uint32_t delta_seal_threshold_ = 128;
  uint32_t auto_compact_segments_ = 4;

  bool allow_multi_load_ = true;
  uint32_t max_parts_ = 256;
  uint32_t force_parts_ = 0;
  uint32_t num_devices_ = 1;
  bool use_planner_ = true;
  net::RemoteOptions remote_;

  bool serving_enabled_ = false;
  ServingOptions serving_;
};

/// The facade. One Engine serves one indexed dataset; Search() accepts
/// batches of the matching request kind and returns the unified result
/// shape. Thread-safe: Search, SearchStream and SearchAsync may be called
/// concurrently — only the backend execution of a batch (and its
/// profile-delta bookkeeping) is serialized, inside the searcher; host-side
/// result shaping (re-ranking, hit conversion) runs outside that critical
/// section, so one stream's post-processing overlaps the next chunk's
/// device work. Each call's SearchProfile delta covers exactly its own
/// work.
class Engine {
 public:
  static Result<std::unique_ptr<Engine>> Create(const EngineConfig& config);
  ~Engine();

  /// Persists this engine as a versioned bundle: the inverted index plus
  /// the modality-specific query-side state (LSH family coefficients and
  /// re-hash seeds, n-gram vocabulary, token universe, column layout) that
  /// Open needs to compile queries exactly like this engine. The paper
  /// treats index construction as an offline one-time cost; Save/Open make
  /// that workflow concrete — build once, serve from the bundle. Fails
  /// with Unimplemented for engines over caller-supplied custom LSH
  /// families, and with IOError when the file cannot be written in full
  /// (e.g. a full disk).
  Status Save(const std::string& path,
              const BundleSaveOptions& options = {}) const;

  /// Opens a bundle written by Save and serves it without rebuilding the
  /// index. `config` supplies the dataset binding — which must be the
  /// dataset the bundle was built from (same modality and shape; it is
  /// still consulted for re-ranking / verification) — plus the runtime
  /// knobs (K, CandidateK, Selector, Device, Devices(n), backend knobs...),
  /// which compose exactly like Create: a bundle opened with Devices(n)
  /// shards onto the multi-device tier. Transform-side knobs (Seed,
  /// HashFunctions, RehashDomain, Ngram, VectorFamily / SetFamily) are
  /// ignored — that state comes from the bundle. Compiled bundles carry
  /// their own index: open them with a config that has no dataset binding.
  /// Corrupted or truncated bundles fail with InvalidArgument.
  static Result<std::unique_ptr<Engine>> Open(const std::string& path,
                                              EngineConfig config);

  /// Validates the request (payload kind, non-empty batch, dimensions)
  /// and answers it. Every modality reports errors through the same
  /// Status contract.
  Result<SearchResult> Search(const SearchRequest& request);

  /// Streaming pipeline over large query sets (Fig. 11): splits the request
  /// into chunks of options.chunk_size queries, answers each through the
  /// backend (composing with the single-load -> multiple-loading
  /// escalation), and delivers per-chunk results in input order through
  /// `on_chunk` (optional). With options.pipeline (the default) the stream
  /// is two-stage: chunk k+1's prepare (query transform + per-device
  /// staging) runs concurrently with chunk k's execute (match + select +
  /// host merge), double-buffered so at most one chunk is staged ahead;
  /// profile.overlap_seconds reports the measured overlap. The first
  /// error — from the backend or a non-OK callback return — cancels the
  /// remaining chunks and drains (discards) the staged chunk. On success
  /// the returned SearchResult concatenates all chunks, identical to one
  /// blocking Search of the whole request — pipelined or not; its
  /// `profile` sums the chunk deltas.
  Result<SearchResult> SearchStream(const SearchRequest& request,
                                    const SearchStreamOptions& options = {},
                                    const SearchChunkCallback& on_chunk = {});

  /// SearchStream running on the process-wide thread pool. The request's
  /// payload spans must stay alive until the future resolves. Concurrent
  /// async streams on one engine interleave chunk-by-chunk; each stream's
  /// chunks are still delivered in its own input order. The destructor
  /// blocks until every outstanding async search has finished, so the
  /// engine cannot be freed out from under a running stream.
  std::future<Result<SearchResult>> SearchAsync(
      SearchRequest request, SearchStreamOptions options = {},
      SearchChunkCallback on_chunk = {});

  /// Inserts a batch of objects (same modality as the engine) into the
  /// live index and returns their assigned ids, in request order. Writes
  /// land in in-memory delta segments; every subsequent Search /
  /// SearchStream / SearchAsync — on any backend tier — sees them
  /// immediately. Thread-safe against concurrent searches and other
  /// mutations.
  Result<std::vector<ObjectId>> Insert(const InsertRequest& request);

  /// Removes objects by id (tombstones consulted at merge time; the ids
  /// disappear from all subsequent search results immediately).
  /// InvalidArgument when an id was never assigned or is already removed —
  /// ids earlier in the span are removed regardless.
  Status Remove(std::span<const ObjectId> ids);

  /// Seals the pending delta segments and synchronously compacts
  /// delta+main into a fresh immutable index, hot-swapped behind the
  /// backend (in-flight streams never pause). On return the mutable layer
  /// is empty. A no-op on engines that were never mutated.
  Status Flush();

  MutationStats mutation_stats() const;

  /// Human-readable report of the execution plan the engine's backend runs
  /// under: planner on/off, how the index stats were obtained (persisted in
  /// the bundle vs computed), the plan's tier / part boundaries / placement
  /// / chunk size, the live tier, the stats summary and the cost-model
  /// state. Purely informational — the schedule, not the answers.
  std::string ExplainPlan() const;

  /// Serving-layer counters since engine creation: admissions, backpressure
  /// rejections, cache hits / misses, dedup joins, super-batches and their
  /// coalesced request / query totals, queue-wait aggregates. All zero when
  /// EngineConfig::Serving was not set.
  ServingStats serving_stats() const;

  Modality modality() const;
  /// Objects the engine serves ids for: the indexed dataset plus every
  /// insert (removed ids stay counted — ids are never reused).
  uint32_t num_objects() const;
  const EngineConfig& config() const { return config_; }

 private:
  struct AsyncTracker;

  Engine(EngineConfig config, std::unique_ptr<Searcher> searcher);

  /// Knob validation shared by Create and Open (everything but the
  /// dataset-binding requirement).
  static Status ValidateCommonKnobs(const EngineConfig& config);

  /// Shared request validation of Search / SearchStream.
  Status ValidateRequest(const SearchRequest& request) const;

  /// Request validation of Insert (modality match, non-empty batch,
  /// payload shape).
  Status ValidateInsertRequest(const InsertRequest& request) const;

  /// Folds a finished stream's measured overlap into the engine-lifetime
  /// total and returns the new total (for cumulative.overlap_seconds).
  double AddOverlapSeconds(double delta);

  EngineConfig config_;
  /// Thread-safe (each implementation serializes its backend execution
  /// internally; see searcher.h).
  std::unique_ptr<Searcher> searcher_;
  /// Serving layer (EngineConfig::Serving); nullptr when serving is off.
  /// Declared after searcher_ so it is destroyed first — its dispatcher
  /// thread may be mid-Search on the searcher.
  std::unique_ptr<serve::RequestScheduler> scheduler_;
  /// Counts in-flight SearchAsync tasks; shared with the tasks themselves
  /// so the destructor can wait for them without lifetime games.
  std::shared_ptr<AsyncTracker> async_;
  /// Engine-lifetime pipelined-overlap seconds (see
  /// SearchProfile::overlap_seconds).
  std::mutex overlap_mu_;
  double overlap_total_s_ = 0;
};

}  // namespace genie
