#include "baselines/bucket_kselect.h"

namespace genie {
namespace baselines {

std::vector<TopKEntry> BucketKSelect(const uint32_t* counts, uint32_t n,
                                     uint32_t k,
                                     const BucketKSelectOptions& options,
                                     BucketKSelectStats* stats) {
  return BucketKSelectWith([counts](ObjectId id) { return counts[id]; }, n,
                           k, options, stats);
}

}  // namespace baselines
}  // namespace genie
