#include "baselines/bucket_kselect.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace genie {
namespace baselines {

std::vector<TopKEntry> BucketKSelect(const uint32_t* counts, uint32_t n,
                                     uint32_t k,
                                     const BucketKSelectOptions& options,
                                     BucketKSelectStats* stats) {
  std::vector<TopKEntry> saved;  // items strictly above the pivot bucket
  if (k == 0 || n == 0) return saved;
  if (k >= n) {
    saved.reserve(n);
    for (ObjectId i = 0; i < n; ++i) saved.push_back({i, counts[i]});
    std::sort(saved.begin(), saved.end(),
              [](const TopKEntry& a, const TopKEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.id < b.id;
              });
    return saved;
  }

  // Candidate set starts as the whole array; each iteration narrows it to
  // the bucket containing the k-th element (Step 1-3 of Appendix A).
  std::vector<ObjectId> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  uint32_t remaining = k;
  const uint32_t num_buckets = std::max<uint32_t>(2, options.num_buckets);

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    if (stats != nullptr) {
      ++stats->iterations;
      stats->elements_scanned += candidates.size();
    }
    uint32_t min_v = counts[candidates[0]];
    uint32_t max_v = min_v;
    for (ObjectId id : candidates) {
      min_v = std::min(min_v, counts[id]);
      max_v = std::max(max_v, counts[id]);
    }
    if (min_v == max_v || candidates.size() <= remaining) {
      // All ties (or nothing left to separate): take any `remaining`.
      for (uint32_t i = 0; i < remaining; ++i) {
        saved.push_back({candidates[i], counts[candidates[i]]});
      }
      remaining = 0;
      break;
    }
    // Step (1): histogram into buckets; bucket 0 holds the largest values
    // so the "before the selected bucket" prefix is the saved set.
    const double scale =
        static_cast<double>(num_buckets) / (max_v - min_v + 1);
    std::vector<uint32_t> histogram(num_buckets, 0);
    auto bucket_of = [&](uint32_t v) {
      uint32_t b = static_cast<uint32_t>((max_v - v) * scale);
      return std::min(b, num_buckets - 1);
    };
    for (ObjectId id : candidates) ++histogram[bucket_of(counts[id])];
    // Step (2): find the bucket containing the k-th object.
    uint32_t pivot_bucket = 0;
    uint32_t above = 0;
    while (above + histogram[pivot_bucket] < remaining) {
      above += histogram[pivot_bucket];
      ++pivot_bucket;
    }
    // Step (3): save items above the pivot bucket; recurse into it.
    std::vector<ObjectId> next;
    next.reserve(histogram[pivot_bucket]);
    for (ObjectId id : candidates) {
      const uint32_t b = bucket_of(counts[id]);
      if (b < pivot_bucket) {
        saved.push_back({id, counts[id]});
      } else if (b == pivot_bucket) {
        next.push_back(id);
      }
    }
    remaining -= above;
    candidates.swap(next);
    if (remaining == 0) break;
  }
  if (remaining > 0) {
    // Iteration cap hit (degenerate distributions): finish with a partial
    // sort of the surviving candidates.
    GENIE_CHECK(candidates.size() >= remaining);
    std::nth_element(candidates.begin(), candidates.begin() + remaining - 1,
                     candidates.end(), [&](ObjectId a, ObjectId b) {
                       if (counts[a] != counts[b])
                         return counts[a] > counts[b];
                       return a < b;
                     });
    for (uint32_t i = 0; i < remaining; ++i) {
      saved.push_back({candidates[i], counts[candidates[i]]});
    }
  }
  std::sort(saved.begin(), saved.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.id < b.id;
            });
  return saved;
}

}  // namespace baselines
}  // namespace genie
