#include "baselines/cpu_idx_engine.h"

#include <algorithm>

#include "core/count_table.h"

namespace genie {
namespace baselines {

CpuIdxEngine::CpuIdxEngine(const InvertedIndex* index,
                           const CpuIdxOptions& options)
    : index_(index), options_(options) {
  counts_.assign(index_->num_objects(), 0);
}

Result<std::unique_ptr<CpuIdxEngine>> CpuIdxEngine::Create(
    const InvertedIndex* index, const CpuIdxOptions& options) {
  if (index == nullptr) return Status::InvalidArgument("index is null");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  return std::unique_ptr<CpuIdxEngine>(new CpuIdxEngine(index, options));
}

Result<std::vector<QueryResult>> CpuIdxEngine::ExecuteBatch(
    std::span<const Query> queries) {
  std::vector<QueryResult> results(queries.size());
  const auto postings = index_->postings();
  for (size_t q = 0; q < queries.size(); ++q) {
    touched_.clear();
    const Query& query = queries[q];
    for (uint32_t i = 0; i < query.num_items(); ++i) {
      for (Keyword kw : query.item(i)) {
        auto [first, count] = index_->KeywordLists(kw);
        for (uint32_t l = 0; l < count; ++l) {
          const auto ref = index_->List(first + l);
          for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
            const ObjectId oid = postings[pos];
            if (counts_[oid] == 0) touched_.push_back(oid);
            ++counts_[oid];
          }
        }
      }
    }
    // Partial selection over the touched objects only.
    auto better = [&](ObjectId a, ObjectId b) {
      if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
      return a < b;
    };
    if (touched_.size() > options_.k) {
      std::nth_element(touched_.begin(), touched_.begin() + options_.k,
                       touched_.end(), better);
      touched_.resize(options_.k);
    }
    std::sort(touched_.begin(), touched_.end(), better);
    results[q].entries.reserve(touched_.size());
    for (ObjectId id : touched_) {
      results[q].entries.push_back({id, counts_[id]});
    }
    results[q].threshold =
        results[q].entries.empty() ? 0 : results[q].entries.back().count;
    // Reset the count array for the next query.
    for (uint32_t i = 0; i < query.num_items(); ++i) {
      for (Keyword kw : query.item(i)) {
        auto [first, count] = index_->KeywordLists(kw);
        for (uint32_t l = 0; l < count; ++l) {
          const auto ref = index_->List(first + l);
          for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
            counts_[postings[pos]] = 0;
          }
        }
      }
    }
  }
  return results;
}

}  // namespace baselines
}  // namespace genie
