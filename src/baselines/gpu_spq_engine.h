#pragma once

/// \file gpu_spq_engine.h
/// GPU-SPQ (Section VI-A2): the paper's scan-everything baseline. It does
/// not use an inverted index at query time: match counts between every
/// query and every object are computed by scanning the whole dataset into a
/// per-query count array, then SPQ bucket k-selection (Appendix A) extracts
/// the top-k. Memory per query is a full count row, which is why the paper
/// observes GPU-SPQ cannot run more than 256 queries per batch.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/match_engine.h"
#include "core/query.h"
#include "index/inverted_index.h"
#include "sim/device.h"

namespace genie {
namespace baselines {

/// Object -> keywords CSR, derived from an inverted index (the "original
/// data" GPU-SPQ scans).
struct ForwardIndex {
  std::vector<uint32_t> offsets;  // num_objects + 1
  std::vector<Keyword> keywords;

  static ForwardIndex FromInvertedIndex(const InvertedIndex& index);
  uint32_t num_objects() const {
    return static_cast<uint32_t>(offsets.size() - 1);
  }
};

struct GpuSpqOptions {
  uint32_t k = 100;
  uint32_t block_dim = 32;
  /// Objects per scanning block (grid = queries x ceil(n / this)).
  uint32_t objects_per_block = 8192;
  sim::Device* device = nullptr;
};

class GpuSpqEngine {
 public:
  static Result<std::unique_ptr<GpuSpqEngine>> Create(
      const InvertedIndex* index, const GpuSpqOptions& options);

  Result<std::vector<QueryResult>> ExecuteBatch(
      std::span<const Query> queries);

  const MatchProfile& profile() const { return profile_; }

 private:
  GpuSpqEngine(ForwardIndex forward, uint32_t vocab_size,
               const GpuSpqOptions& options, sim::Device* device);

  ForwardIndex forward_;
  uint32_t vocab_size_;
  GpuSpqOptions options_;
  sim::Device* device_;
  MatchProfile profile_;
};

}  // namespace baselines
}  // namespace genie
