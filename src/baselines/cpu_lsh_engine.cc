#include "baselines/cpu_lsh_engine.h"

#include <algorithm>

#include "common/rng.h"
#include "lsh/murmur3.h"

namespace genie {
namespace baselines {

CpuLshEngine::CpuLshEngine(const data::PointMatrix* points,
                           std::shared_ptr<const lsh::VectorLshFamily> family,
                           const CpuLshOptions& options)
    : points_(points), family_(std::move(family)), options_(options) {
  Rng rng(options_.seed);
  rehash_seeds_.resize(family_->num_functions());
  for (auto& s : rehash_seeds_) s = rng.Next64();
  BuildTables();
  counts_.assign(points_->num_points(), 0);
}

Result<std::unique_ptr<CpuLshEngine>> CpuLshEngine::Create(
    const data::PointMatrix* points,
    std::shared_ptr<const lsh::VectorLshFamily> family,
    const CpuLshOptions& options) {
  if (points == nullptr) return Status::InvalidArgument("points is null");
  if (family == nullptr) return Status::InvalidArgument("family is null");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  return std::unique_ptr<CpuLshEngine>(
      new CpuLshEngine(points, std::move(family), options));
}

void CpuLshEngine::BuildTables() {
  const uint32_t m = family_->num_functions();
  tables_.resize(m);
  for (uint32_t f = 0; f < m; ++f) {
    for (uint32_t i = 0; i < points_->num_points(); ++i) {
      const uint32_t bucket = static_cast<uint32_t>(
          lsh::Murmur3_64(family_->RawHash(f, points_->row(i)),
                          rehash_seeds_[f]) %
          options_.rehash_domain);
      tables_[f][bucket].push_back(i);
    }
  }
}

Result<std::vector<std::vector<ObjectId>>> CpuLshEngine::KnnBatch(
    const data::PointMatrix& queries, uint32_t k_nn) {
  std::vector<std::vector<ObjectId>> results(queries.num_points());
  const uint32_t m = family_->num_functions();
  for (uint32_t q = 0; q < queries.num_points(); ++q) {
    const auto query_row = queries.row(q);
    touched_.clear();
    // Dynamic collision counting over all m functions.
    for (uint32_t f = 0; f < m; ++f) {
      const uint32_t bucket = static_cast<uint32_t>(
          lsh::Murmur3_64(family_->RawHash(f, query_row), rehash_seeds_[f]) %
          options_.rehash_domain);
      auto it = tables_[f].find(bucket);
      if (it == tables_[f].end()) continue;
      for (ObjectId oid : it->second) {
        if (counts_[oid] == 0) touched_.push_back(oid);
        ++counts_[oid];
      }
    }
    // Frequent candidates first, then exact-distance verification.
    const uint32_t num_candidates = std::min<uint32_t>(
        static_cast<uint32_t>(touched_.size()),
        std::max(k_nn, options_.candidate_multiplier * options_.k));
    std::partial_sort(touched_.begin(), touched_.begin() + num_candidates,
                      touched_.end(), [&](ObjectId a, ObjectId b) {
                        if (counts_[a] != counts_[b])
                          return counts_[a] > counts_[b];
                        return a < b;
                      });
    std::vector<std::pair<double, ObjectId>> verified;
    verified.reserve(num_candidates);
    for (uint32_t c = 0; c < num_candidates; ++c) {
      const ObjectId oid = touched_[c];
      const double d = options_.p == 1
                           ? data::L1Distance(points_->row(oid), query_row)
                           : data::L2Distance(points_->row(oid), query_row);
      verified.emplace_back(d, oid);
    }
    std::sort(verified.begin(), verified.end());
    auto& out = results[q];
    out.reserve(std::min<size_t>(k_nn, verified.size()));
    for (size_t i = 0; i < verified.size() && i < k_nn; ++i) {
      out.push_back(verified[i].second);
    }
    for (ObjectId oid : touched_) counts_[oid] = 0;
  }
  return results;
}

}  // namespace baselines
}  // namespace genie
