#include "baselines/appgram_engine.h"

#include <algorithm>
#include <limits>

#include "sa/edit_distance.h"
#include "sa/ngram.h"

namespace genie {
namespace baselines {

AppGramEngine::AppGramEngine(const std::vector<std::string>* sequences,
                             const AppGramOptions& options)
    : sequences_(sequences), options_(options) {
  BuildIndex();
  counts_.assign(sequences_->size(), 0);
}

Result<std::unique_ptr<AppGramEngine>> AppGramEngine::Create(
    const std::vector<std::string>* sequences, const AppGramOptions& options) {
  if (sequences == nullptr) {
    return Status::InvalidArgument("sequences is null");
  }
  if (options.ngram == 0) return Status::InvalidArgument("ngram must be >= 1");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  return std::unique_ptr<AppGramEngine>(
      new AppGramEngine(sequences, options));
}

void AppGramEngine::BuildIndex() {
  for (size_t i = 0; i < sequences_->size(); ++i) {
    for (const sa::OrderedNgram& g :
         sa::OrderedNgrams((*sequences_)[i], options_.ngram)) {
      const Keyword kw = vocab_.GetOrAdd(g.ToToken());
      if (kw >= postings_.size()) postings_.resize(kw + 1);
      postings_[kw].push_back(static_cast<ObjectId>(i));
    }
  }
}

std::vector<AppGramMatch> AppGramEngine::SearchOne(const std::string& query) {
  const uint32_t n = options_.ngram;
  const uint32_t k = options_.k;
  const int64_t q_len = static_cast<int64_t>(query.size());

  touched_.clear();
  for (const sa::OrderedNgram& g : sa::OrderedNgrams(query, n)) {
    const Keyword kw = vocab_.Find(g.ToToken());
    if (kw == kInvalidKeyword) continue;
    for (ObjectId oid : postings_[kw]) {
      if (counts_[oid] == 0) touched_.push_back(oid);
      ++counts_[oid];
    }
  }
  std::sort(touched_.begin(), touched_.end(), [&](ObjectId a, ObjectId b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return a < b;
  });

  std::vector<AppGramMatch> best;
  auto insert_match = [&](AppGramMatch match) {
    best.insert(std::upper_bound(best.begin(), best.end(), match,
                                 [](const AppGramMatch& a,
                                    const AppGramMatch& b) {
                                   if (a.edit_distance != b.edit_distance)
                                     return a.edit_distance < b.edit_distance;
                                   return a.id < b.id;
                                 }),
                match);
    if (best.size() > k) best.pop_back();
  };
  auto worst_tau = [&]() -> uint32_t {
    return best.size() < k ? std::numeric_limits<uint32_t>::max()
                           : best.back().edit_distance;
  };

  bool pruned = false;  // true once the count filter cut the candidate list
  for (ObjectId oid : touched_) {
    const std::string& seq = (*sequences_)[oid];
    const uint32_t tau_star = worst_tau();
    if (best.size() == k) {
      if (tau_star == 0) {
        pruned = true;
        break;
      }
      const int64_t theta =
          q_len - static_cast<int64_t>(n) + 1 -
          static_cast<int64_t>(n) * (static_cast<int64_t>(tau_star) - 1);
      if (theta > static_cast<int64_t>(counts_[oid])) {
        pruned = theta > 0;  // a positive bound also rules out count-0 items
        break;
      }
      const int64_t len_diff =
          std::abs(q_len - static_cast<int64_t>(seq.size()));
      if (len_diff > static_cast<int64_t>(tau_star) - 1) continue;
      const uint32_t tau = sa::BandedEditDistance(query, seq, tau_star - 1);
      if (tau <= tau_star - 1) insert_match({oid, tau});
    } else {
      insert_match({oid, sa::EditDistance(query, seq)});
    }
  }

  // Exactness: if the count filter never became strong enough to exclude
  // zero-count sequences, fall back to scanning them (AppGram's guarantee).
  if (!pruned || best.size() < k) {
    const uint32_t tau_star_now = worst_tau();
    const int64_t theta_zero =
        best.size() == k
            ? q_len - static_cast<int64_t>(n) + 1 -
                  static_cast<int64_t>(n) *
                      (static_cast<int64_t>(tau_star_now) - 1)
            : std::numeric_limits<int64_t>::min();
    if (theta_zero <= 0) {
      for (ObjectId oid = 0; oid < sequences_->size(); ++oid) {
        if (counts_[oid] > 0) continue;  // already considered above
        const std::string& seq = (*sequences_)[oid];
        const uint32_t tau_star = worst_tau();
        if (best.size() == k) {
          if (tau_star == 0) break;
          const int64_t len_diff =
              std::abs(q_len - static_cast<int64_t>(seq.size()));
          if (len_diff > static_cast<int64_t>(tau_star) - 1) continue;
          const uint32_t tau = sa::BandedEditDistance(query, seq, tau_star - 1);
          if (tau <= tau_star - 1) insert_match({oid, tau});
        } else {
          insert_match({oid, sa::EditDistance(query, seq)});
        }
      }
    }
  }

  for (ObjectId oid : touched_) counts_[oid] = 0;
  return best;
}

Result<std::vector<std::vector<AppGramMatch>>> AppGramEngine::SearchBatch(
    std::span<const std::string> queries) {
  std::vector<std::vector<AppGramMatch>> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i] = SearchOne(queries[i]);
  }
  return results;
}

}  // namespace baselines
}  // namespace genie
