#pragma once

/// \file gpu_lsh_engine.h
/// GPU-LSH: a multi-table LSH ANN baseline on the device, standing in for
/// Pan & Manocha's bi-level LSH (DESIGN.md §2). It keeps the two traits the
/// paper's comparison hinges on: (1) one thread processes one query — which
/// is why its running time is flat in the batch size until 1024 queries
/// (Fig. 9) — and (2) selection is a sort over the gathered candidate
/// short-list, the k-selection bottleneck c-PQ avoids.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/points.h"
#include "index/types.h"
#include "lsh/lsh_family.h"
#include "sim/device.h"

namespace genie {
namespace baselines {

struct GpuLshOptions {
  uint32_t num_tables = 16;          // L
  uint32_t functions_per_table = 4;  // h (concatenated per table key)
  uint32_t p = 2;                    // verification metric
  uint64_t seed = 7;
  uint32_t block_dim = 1024;  // threads per block; 1 query per thread
  /// Early-stop emulation (Pan & Manocha stop probing once enough
  /// candidates are gathered): at most candidate_budget_per_k * k_nn
  /// candidates enter the short-list, so small k degrades the
  /// approximation ratio exactly as the paper observes for GPU-LSH
  /// (Section VI-D1). 0 = unlimited.
  uint32_t candidate_budget_per_k = 16;
  sim::Device* device = nullptr;
};

class GpuLshEngine {
 public:
  /// `family` must provide at least num_tables * functions_per_table
  /// functions.
  static Result<std::unique_ptr<GpuLshEngine>> Create(
      const data::PointMatrix* points,
      std::shared_ptr<const lsh::VectorLshFamily> family,
      const GpuLshOptions& options);

  /// kNN ids per query (ascending exact distance over the gathered
  /// candidates).
  Result<std::vector<std::vector<ObjectId>>> KnnBatch(
      const data::PointMatrix& queries, uint32_t k_nn);

 private:
  GpuLshEngine(const data::PointMatrix* points,
               std::shared_ptr<const lsh::VectorLshFamily> family,
               const GpuLshOptions& options, sim::Device* device);
  void BuildTables();
  uint64_t TableKey(uint32_t table, std::span<const float> point) const;

  const data::PointMatrix* points_;
  std::shared_ptr<const lsh::VectorLshFamily> family_;
  GpuLshOptions options_;
  sim::Device* device_;
  std::vector<std::unordered_map<uint64_t, std::vector<ObjectId>>> tables_;
};

}  // namespace baselines
}  // namespace genie
