#pragma once

/// \file bucket_kselect.h
/// SPQ — the paper's Appendix-A k-selection: a GPU bucket-selection
/// algorithm (after Alabi et al.) that repeatedly partitions the value
/// range into buckets, keeps everything above the bucket holding the k-th
/// value, and recurses into that bucket until k items are isolated
/// (Fig. 15). One block handles one count array; the GEN-SPQ and GPU-SPQ
/// configurations run it as their selection stage.

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "index/types.h"

namespace genie {
namespace baselines {

struct BucketKSelectOptions {
  uint32_t num_buckets = 256;
  /// Safety bound; the paper observes 2-3 iterations in practice.
  uint32_t max_iterations = 64;
};

struct BucketKSelectStats {
  uint32_t iterations = 0;
  uint64_t elements_scanned = 0;
};

/// Returns the k largest (id, count) pairs of counts[0..n), sorted by
/// descending count (ties by ascending id). Zero counts are still eligible,
/// matching a raw selection over the count table.
std::vector<TopKEntry> BucketKSelect(const uint32_t* counts, uint32_t n,
                                     uint32_t k,
                                     const BucketKSelectOptions& options = {},
                                     BucketKSelectStats* stats = nullptr);

}  // namespace baselines
}  // namespace genie
