#pragma once

/// \file bucket_kselect.h
/// SPQ — the paper's Appendix-A k-selection: a GPU bucket-selection
/// algorithm (after Alabi et al.) that repeatedly partitions the value
/// range into buckets, keeps everything above the bucket holding the k-th
/// value, and recurses into that bucket until k items are isolated
/// (Fig. 15). One block handles one count array; the GEN-SPQ and GPU-SPQ
/// configurations run it as their selection stage, and the match engine's
/// kBucketSelect configuration runs it directly over the packed Bitmap
/// Counter (through the accessor-functor overload below).

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "core/query.h"
#include "index/types.h"

namespace genie {
namespace baselines {

struct BucketKSelectOptions {
  uint32_t num_buckets = 256;
  /// Safety bound; the paper observes 2-3 iterations in practice.
  uint32_t max_iterations = 64;
};

struct BucketKSelectStats {
  uint32_t iterations = 0;
  uint64_t elements_scanned = 0;
};

/// Returns the k largest (id, count) pairs of count_of(0..n), sorted by
/// descending count (ties by ascending id). Zero counts are still
/// eligible, matching a raw selection over a count table. `count_of` is
/// any callable mapping ObjectId -> uint32_t — a raw count-table row, or a
/// packed BitmapCounterView::Get.
template <typename CountFn>
std::vector<TopKEntry> BucketKSelectWith(CountFn&& count_of, uint32_t n,
                                         uint32_t k,
                                         const BucketKSelectOptions& options = {},
                                         BucketKSelectStats* stats = nullptr) {
  std::vector<TopKEntry> saved;  // items strictly above the pivot bucket
  if (k == 0 || n == 0) return saved;
  if (k >= n) {
    saved.reserve(n);
    for (ObjectId i = 0; i < n; ++i) saved.push_back({i, count_of(i)});
    std::sort(saved.begin(), saved.end(),
              [](const TopKEntry& a, const TopKEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.id < b.id;
              });
    return saved;
  }

  // Candidate set starts as the whole array; each iteration narrows it to
  // the bucket containing the k-th element (Step 1-3 of Appendix A).
  std::vector<ObjectId> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  uint32_t remaining = k;
  const uint32_t num_buckets = std::max<uint32_t>(2, options.num_buckets);

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    if (stats != nullptr) {
      ++stats->iterations;
      stats->elements_scanned += candidates.size();
    }
    uint32_t min_v = count_of(candidates[0]);
    uint32_t max_v = min_v;
    for (ObjectId id : candidates) {
      const uint32_t v = count_of(id);
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
    if (min_v == max_v || candidates.size() <= remaining) {
      // All ties (or nothing left to separate): take any `remaining`.
      for (uint32_t i = 0; i < remaining; ++i) {
        saved.push_back({candidates[i], count_of(candidates[i])});
      }
      remaining = 0;
      break;
    }
    // Step (1): histogram into buckets; bucket 0 holds the largest values
    // so the "before the selected bucket" prefix is the saved set.
    const double scale =
        static_cast<double>(num_buckets) / (max_v - min_v + 1);
    std::vector<uint32_t> histogram(num_buckets, 0);
    auto bucket_of = [&](uint32_t v) {
      uint32_t b = static_cast<uint32_t>((max_v - v) * scale);
      return std::min(b, num_buckets - 1);
    };
    for (ObjectId id : candidates) ++histogram[bucket_of(count_of(id))];
    // Step (2): find the bucket containing the k-th object.
    uint32_t pivot_bucket = 0;
    uint32_t above = 0;
    while (above + histogram[pivot_bucket] < remaining) {
      above += histogram[pivot_bucket];
      ++pivot_bucket;
    }
    // Step (3): save items above the pivot bucket; recurse into it.
    std::vector<ObjectId> next;
    next.reserve(histogram[pivot_bucket]);
    for (ObjectId id : candidates) {
      const uint32_t b = bucket_of(count_of(id));
      if (b < pivot_bucket) {
        saved.push_back({id, count_of(id)});
      } else if (b == pivot_bucket) {
        next.push_back(id);
      }
    }
    remaining -= above;
    candidates.swap(next);
    if (remaining == 0) break;
  }
  if (remaining > 0) {
    // Iteration cap hit (degenerate distributions): finish with a partial
    // sort of the surviving candidates.
    GENIE_CHECK(candidates.size() >= remaining);
    std::nth_element(candidates.begin(), candidates.begin() + remaining - 1,
                     candidates.end(), [&](ObjectId a, ObjectId b) {
                       if (count_of(a) != count_of(b))
                         return count_of(a) > count_of(b);
                       return a < b;
                     });
    for (uint32_t i = 0; i < remaining; ++i) {
      saved.push_back({candidates[i], count_of(candidates[i])});
    }
  }
  std::sort(saved.begin(), saved.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.id < b.id;
            });
  return saved;
}

/// The classic raw-array form (GEN-SPQ / GPU-SPQ count tables).
std::vector<TopKEntry> BucketKSelect(const uint32_t* counts, uint32_t n,
                                     uint32_t k,
                                     const BucketKSelectOptions& options = {},
                                     BucketKSelectStats* stats = nullptr);

}  // namespace baselines
}  // namespace genie
