#include "baselines/gpu_lsh_engine.h"

#include <algorithm>
#include <limits>

#include "common/bit_util.h"
#include "lsh/murmur3.h"

namespace genie {
namespace baselines {

GpuLshEngine::GpuLshEngine(const data::PointMatrix* points,
                           std::shared_ptr<const lsh::VectorLshFamily> family,
                           const GpuLshOptions& options, sim::Device* device)
    : points_(points),
      family_(std::move(family)),
      options_(options),
      device_(device) {
  BuildTables();
}

Result<std::unique_ptr<GpuLshEngine>> GpuLshEngine::Create(
    const data::PointMatrix* points,
    std::shared_ptr<const lsh::VectorLshFamily> family,
    const GpuLshOptions& options) {
  if (points == nullptr) return Status::InvalidArgument("points is null");
  if (family == nullptr) return Status::InvalidArgument("family is null");
  if (family->num_functions() <
      options.num_tables * options.functions_per_table) {
    return Status::InvalidArgument(
        "family must provide num_tables * functions_per_table functions");
  }
  sim::Device* device =
      options.device != nullptr ? options.device : sim::Device::Default();
  return std::unique_ptr<GpuLshEngine>(
      new GpuLshEngine(points, std::move(family), options, device));
}

uint64_t GpuLshEngine::TableKey(uint32_t table,
                                std::span<const float> point) const {
  uint64_t digest = 0xA5A5A5A5ULL ^ table;
  const uint32_t base = table * options_.functions_per_table;
  for (uint32_t f = 0; f < options_.functions_per_table; ++f) {
    digest = lsh::Murmur3_64(family_->RawHash(base + f, point), digest);
  }
  return digest;
}

void GpuLshEngine::BuildTables() {
  tables_.resize(options_.num_tables);
  for (uint32_t t = 0; t < options_.num_tables; ++t) {
    for (uint32_t i = 0; i < points_->num_points(); ++i) {
      tables_[t][TableKey(t, points_->row(i))].push_back(i);
    }
  }
}

Result<std::vector<std::vector<ObjectId>>> GpuLshEngine::KnnBatch(
    const data::PointMatrix& queries, uint32_t k_nn) {
  const uint32_t num_queries = queries.num_points();
  std::vector<std::vector<ObjectId>> results(num_queries);
  if (num_queries == 0) return results;

  // One thread per query: with block_dim = 1024 a batch below 1024 queries
  // leaves most of a block idle, reproducing GPU-LSH's flat running time in
  // the batch size (Section VI-B1).
  const uint32_t block_dim = options_.block_dim;
  const uint32_t grid = static_cast<uint32_t>(
      bit_util::CeilDiv(num_queries, block_dim));
  const uint32_t p = options_.p;
  std::vector<std::vector<ObjectId>>* out = &results;
  GENIE_RETURN_NOT_OK(device_->Launch(
      {grid, block_dim}, [&, p, k_nn](const sim::ThreadCtx& ctx) {
        const uint32_t q = ctx.global_idx();
        if (q >= num_queries) return;
        const auto query_row = queries.row(q);
        // Gather the short-list, stopping early once the candidate budget
        // is reached (bi-level LSH's early-stop behaviour).
        const size_t budget =
            options_.candidate_budget_per_k == 0
                ? std::numeric_limits<size_t>::max()
                : static_cast<size_t>(options_.candidate_budget_per_k) * k_nn;
        std::vector<ObjectId> candidates;
        for (uint32_t t = 0;
             t < options_.num_tables && candidates.size() < budget; ++t) {
          auto it = tables_[t].find(TableKey(t, query_row));
          if (it == tables_[t].end()) continue;
          const size_t take =
              std::min(it->second.size(), budget - candidates.size());
          candidates.insert(candidates.end(), it->second.begin(),
                            it->second.begin() + take);
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
        // Short-list search: full sort by exact distance (the bottleneck
        // the paper contrasts with c-PQ).
        std::vector<std::pair<double, ObjectId>> ranked;
        ranked.reserve(candidates.size());
        for (ObjectId oid : candidates) {
          const double d =
              p == 1 ? data::L1Distance(points_->row(oid), query_row)
                     : data::L2Distance(points_->row(oid), query_row);
          ranked.emplace_back(d, oid);
        }
        std::sort(ranked.begin(), ranked.end());
        auto& mine = (*out)[q];
        mine.reserve(std::min<size_t>(k_nn, ranked.size()));
        for (size_t i = 0; i < ranked.size() && i < k_nn; ++i) {
          mine.push_back(ranked[i].second);
        }
      }));
  return results;
}

}  // namespace baselines
}  // namespace genie
