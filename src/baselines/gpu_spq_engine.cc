#include "baselines/gpu_spq_engine.h"

#include <algorithm>

#include "baselines/bucket_kselect.h"
#include "common/bit_util.h"
#include "common/timer.h"
#include "core/hash_table.h"

namespace genie {
namespace baselines {

ForwardIndex ForwardIndex::FromInvertedIndex(const InvertedIndex& index) {
  ForwardIndex fwd;
  const uint32_t n = index.num_objects();
  fwd.offsets.assign(n + 1, 0);
  for (uint32_t kw = 0; kw < index.vocab_size(); ++kw) {
    auto [first, count] = index.KeywordLists(kw);
    for (uint32_t l = 0; l < count; ++l) {
      const auto ref = index.List(first + l);
      for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
        ++fwd.offsets[index.postings()[pos] + 1];
      }
    }
  }
  for (uint32_t i = 0; i < n; ++i) fwd.offsets[i + 1] += fwd.offsets[i];
  fwd.keywords.resize(fwd.offsets[n]);
  std::vector<uint32_t> cursor(fwd.offsets.begin(), fwd.offsets.end() - 1);
  for (uint32_t kw = 0; kw < index.vocab_size(); ++kw) {
    auto [first, count] = index.KeywordLists(kw);
    for (uint32_t l = 0; l < count; ++l) {
      const auto ref = index.List(first + l);
      for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
        fwd.keywords[cursor[index.postings()[pos]]++] = kw;
      }
    }
  }
  return fwd;
}

GpuSpqEngine::GpuSpqEngine(ForwardIndex forward, uint32_t vocab_size,
                           const GpuSpqOptions& options, sim::Device* device)
    : forward_(std::move(forward)),
      vocab_size_(vocab_size),
      options_(options),
      device_(device) {}

Result<std::unique_ptr<GpuSpqEngine>> GpuSpqEngine::Create(
    const InvertedIndex* index, const GpuSpqOptions& options) {
  if (index == nullptr) return Status::InvalidArgument("index is null");
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  sim::Device* device =
      options.device != nullptr ? options.device : sim::Device::Default();
  return std::unique_ptr<GpuSpqEngine>(
      new GpuSpqEngine(ForwardIndex::FromInvertedIndex(*index),
                       index->vocab_size(), options, device));
}

Result<std::vector<QueryResult>> GpuSpqEngine::ExecuteBatch(
    std::span<const Query> queries) {
  const uint32_t num_queries = static_cast<uint32_t>(queries.size());
  std::vector<QueryResult> results(num_queries);
  if (num_queries == 0) return results;
  const uint32_t n = forward_.num_objects();

  // Per-query keyword weights (a keyword may appear in several items).
  sim::DeviceBuffer<uint8_t> d_weights;
  sim::DeviceBuffer<uint32_t> d_offsets;
  sim::DeviceBuffer<Keyword> d_keywords;
  {
    ScopedTimer timer(&profile_.query_transfer_s);
    std::vector<uint8_t> weights(static_cast<size_t>(num_queries) *
                                 vocab_size_);
    for (uint32_t q = 0; q < num_queries; ++q) {
      uint8_t* w = weights.data() + static_cast<size_t>(q) * vocab_size_;
      for (uint32_t i = 0; i < queries[q].num_items(); ++i) {
        for (Keyword kw : queries[q].item(i)) {
          if (kw < vocab_size_ && w[kw] < 255) ++w[kw];
        }
      }
    }
    GENIE_ASSIGN_OR_RETURN(d_weights, sim::DeviceBuffer<uint8_t>::Allocate(
                                          device_, weights.size()));
    GENIE_RETURN_NOT_OK(d_weights.CopyFromHost(weights));
    profile_.query_bytes += weights.size();
  }
  {
    // The dataset itself (the forward image) lives on the device.
    ScopedTimer timer(&profile_.index_transfer_s);
    GENIE_ASSIGN_OR_RETURN(d_offsets, sim::DeviceBuffer<uint32_t>::Allocate(
                                          device_, forward_.offsets.size()));
    GENIE_RETURN_NOT_OK(d_offsets.CopyFromHost(forward_.offsets));
    GENIE_ASSIGN_OR_RETURN(d_keywords, sim::DeviceBuffer<Keyword>::Allocate(
                                           device_, forward_.keywords.size()));
    GENIE_RETURN_NOT_OK(d_keywords.CopyFromHost(forward_.keywords));
    profile_.index_bytes +=
        forward_.offsets.size() * 4 + forward_.keywords.size() * 4;
  }

  sim::DeviceBuffer<uint32_t> d_counts;
  {
    ScopedTimer timer(&profile_.match_s);
    GENIE_ASSIGN_OR_RETURN(
        d_counts, sim::DeviceBuffer<uint32_t>::Allocate(
                      device_, static_cast<uint64_t>(n) * num_queries));
    const uint32_t chunks =
        static_cast<uint32_t>(bit_util::CeilDiv(n, options_.objects_per_block));
    const uint8_t* weights_base = d_weights.data();
    const uint32_t* offsets = d_offsets.data();
    const Keyword* keywords = d_keywords.data();
    uint32_t* counts_base = d_counts.data();
    const uint32_t objects_per_block = options_.objects_per_block;
    const uint32_t vocab = vocab_size_;
    GENIE_RETURN_NOT_OK(device_->Launch(
        {num_queries * chunks, options_.block_dim},
        [=](const sim::ThreadCtx& ctx) {
          const uint32_t q = ctx.block_idx / chunks;
          const uint32_t chunk = ctx.block_idx % chunks;
          const uint8_t* w = weights_base + static_cast<size_t>(q) * vocab;
          uint32_t* counts = counts_base + static_cast<uint64_t>(q) * n;
          const uint32_t begin = chunk * objects_per_block;
          const uint32_t end =
              std::min(n, begin + objects_per_block);
          for (uint32_t obj = begin + ctx.thread_idx; obj < end;
               obj += ctx.block_dim) {
            uint32_t c = 0;
            for (uint32_t pos = offsets[obj]; pos < offsets[obj + 1]; ++pos) {
              c += w[keywords[pos]];
            }
            counts[obj] = c;
          }
        }));
  }

  {
    ScopedTimer timer(&profile_.select_s);
    sim::DeviceBuffer<uint64_t> d_out;
    sim::DeviceBuffer<uint32_t> d_out_size;
    GENIE_ASSIGN_OR_RETURN(
        d_out, sim::DeviceBuffer<uint64_t>::Allocate(
                   device_, static_cast<uint64_t>(options_.k) * num_queries));
    GENIE_ASSIGN_OR_RETURN(d_out_size, sim::DeviceBuffer<uint32_t>::Allocate(
                                           device_, num_queries));
    const uint32_t* counts_base = d_counts.data();
    uint64_t* out_base = d_out.data();
    uint32_t* out_size_base = d_out_size.data();
    const uint32_t k = options_.k;
    GENIE_RETURN_NOT_OK(
        device_->Launch({num_queries, 1}, [=](const sim::ThreadCtx& ctx) {
          const uint32_t q = ctx.block_idx;
          auto top = BucketKSelect(counts_base + static_cast<uint64_t>(q) * n,
                                   n, k);
          uint64_t* out = out_base + static_cast<uint64_t>(q) * k;
          for (size_t i = 0; i < top.size(); ++i) {
            out[i] = CpqHashTableView::MakeEntry(top[i].id, top[i].count);
          }
          out_size_base[q] = static_cast<uint32_t>(top.size());
        }));
    std::vector<uint32_t> sizes(num_queries);
    GENIE_RETURN_NOT_OK(d_out_size.CopyToHost(sizes.data(), num_queries));
    std::vector<uint64_t> row(options_.k);
    for (uint32_t q = 0; q < num_queries; ++q) {
      GENIE_RETURN_NOT_OK(d_out.CopyToHost(
          row.data(), sizes[q], static_cast<uint64_t>(q) * options_.k));
      profile_.result_bytes += sizes[q] * sizeof(uint64_t);
      for (uint32_t i = 0; i < sizes[q]; ++i) {
        results[q].entries.push_back({CpqHashTableView::EntryId(row[i]),
                                      CpqHashTableView::EntryCount(row[i])});
      }
      while (!results[q].entries.empty() &&
             results[q].entries.back().count == 0) {
        results[q].entries.pop_back();
      }
      results[q].threshold =
          results[q].entries.empty() ? 0 : results[q].entries.back().count;
    }
  }
  return results;
}

}  // namespace baselines
}  // namespace genie
