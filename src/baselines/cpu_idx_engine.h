#pragma once

/// \file cpu_idx_engine.h
/// CPU-Idx (Section VI-A2): the same inverted index scanned on the CPU,
/// one query at a time, with an array of match counts and a partial quick
/// selection for the top-k — the paper's single-threaded CPU baseline.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/query.h"
#include "index/inverted_index.h"

namespace genie {
namespace baselines {

struct CpuIdxOptions {
  uint32_t k = 100;
};

class CpuIdxEngine {
 public:
  static Result<std::unique_ptr<CpuIdxEngine>> Create(
      const InvertedIndex* index, const CpuIdxOptions& options);

  /// Sequential execution, as in the paper's baseline.
  Result<std::vector<QueryResult>> ExecuteBatch(
      std::span<const Query> queries);

 private:
  CpuIdxEngine(const InvertedIndex* index, const CpuIdxOptions& options);

  const InvertedIndex* index_;
  CpuIdxOptions options_;
  std::vector<uint32_t> counts_;      // reused across queries
  std::vector<ObjectId> touched_;     // ids to reset after each query
};

}  // namespace baselines
}  // namespace genie
