#pragma once

/// \file appgram_engine.h
/// An exact CPU sequence-kNN baseline standing in for AppGram (Wang et
/// al.; DESIGN.md §2): n-gram counting with the Theorem 5.1 filter, then
/// verification in descending count order until the filter bound proves no
/// unverified sequence can improve — "AppGram tries its best to find the
/// true kNNs", so unlike GENIE's one-round search this engine never
/// returns an uncertified result (and pays for it in running time).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/types.h"
#include "index/vocabulary.h"

namespace genie {
namespace baselines {

struct AppGramOptions {
  uint32_t ngram = 3;
  uint32_t k = 1;
};

struct AppGramMatch {
  ObjectId id = kInvalidObjectId;
  uint32_t edit_distance = 0;
};

class AppGramEngine {
 public:
  static Result<std::unique_ptr<AppGramEngine>> Create(
      const std::vector<std::string>* sequences,
      const AppGramOptions& options);

  /// Exact kNN under edit distance, per query (ascending distance, ties by
  /// ascending id).
  Result<std::vector<std::vector<AppGramMatch>>> SearchBatch(
      std::span<const std::string> queries);

 private:
  AppGramEngine(const std::vector<std::string>* sequences,
                const AppGramOptions& options);
  void BuildIndex();
  std::vector<AppGramMatch> SearchOne(const std::string& query);

  const std::vector<std::string>* sequences_;
  AppGramOptions options_;
  StringVocabulary vocab_;  // ordered n-gram tokens
  std::vector<std::vector<ObjectId>> postings_;
  std::vector<uint32_t> counts_;   // reused per query
  std::vector<ObjectId> touched_;  // reset list
};

}  // namespace baselines
}  // namespace genie
