#pragma once

/// \file cpu_lsh_engine.h
/// CPU-LSH: a collision-counting LSH baseline in the spirit of C2LSH (Gan
/// et al.), which the paper both compares against and cites as
/// corroboration of GENIE's counting view ("the more collision functions
/// between points, the more likely that they would be near each other").
/// Per query it counts, over m single hash functions, how many buckets the
/// query shares with each point, takes the most-colliding candidates and
/// verifies them by exact distance. Single-threaded CPU cost shape.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/points.h"
#include "index/types.h"
#include "lsh/lsh_family.h"

namespace genie {
namespace baselines {

struct CpuLshOptions {
  uint32_t k = 100;
  /// Collision-count candidates fetched before distance verification.
  uint32_t candidate_multiplier = 4;  // candidates = multiplier * k
  uint32_t rehash_domain = 8192;
  uint64_t seed = 7;
  uint32_t p = 2;  // verification metric
};

class CpuLshEngine {
 public:
  static Result<std::unique_ptr<CpuLshEngine>> Create(
      const data::PointMatrix* points,
      std::shared_ptr<const lsh::VectorLshFamily> family,
      const CpuLshOptions& options);

  /// kNN ids per query (ascending exact distance among verified
  /// candidates).
  Result<std::vector<std::vector<ObjectId>>> KnnBatch(
      const data::PointMatrix& queries, uint32_t k_nn);

 private:
  CpuLshEngine(const data::PointMatrix* points,
               std::shared_ptr<const lsh::VectorLshFamily> family,
               const CpuLshOptions& options);
  void BuildTables();

  const data::PointMatrix* points_;
  std::shared_ptr<const lsh::VectorLshFamily> family_;
  CpuLshOptions options_;
  std::vector<uint64_t> rehash_seeds_;
  // tables_[f][bucket] = points hashed there by function f.
  std::vector<std::unordered_map<uint32_t, std::vector<ObjectId>>> tables_;
  std::vector<uint32_t> counts_;   // reused per query
  std::vector<ObjectId> touched_;  // reset list
};

}  // namespace baselines
}  // namespace genie
