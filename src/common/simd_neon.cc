/// \file simd_neon.cc
/// NEON arm of the count-and-threshold kernels (aarch64 only, where NEON
/// is baseline — no extra target flags needed). Mirrors the AVX2 arm at
/// 4 lanes: vectorial word/shift index math, then a conflict pass that
/// commits each run of same-word lanes with one word update (CAS for the
/// shared arm, plain read-modify-write for the exclusive arm).

#include "common/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace genie {
namespace simd {
namespace detail {

namespace {

template <typename ApplyFn>
inline void BitmapIncrementBatchNeonImpl(const BitmapParams& p,
                                         const uint32_t* oids, uint32_t n,
                                         uint32_t* vals, ApplyFn&& apply,
                                         uint32_t (*tail)(const BitmapParams&,
                                                          uint32_t)) {
  const int32x4_t neg_word_shift =
      vdupq_n_s32(-static_cast<int32_t>(p.log_per_word));
  const int32x4_t bits_shift =
      vdupq_n_s32(static_cast<int32_t>(__builtin_ctz(p.bits)));
  const uint32x4_t pos_mask = vdupq_n_u32((1u << p.log_per_word) - 1u);
  alignas(16) uint32_t word_idx[4];
  alignas(16) uint32_t shifts[4];

  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t v = vld1q_u32(oids + i);
    const uint32x4_t w = vshlq_u32(v, neg_word_shift);  // right shift
    const uint32x4_t s = vshlq_u32(vandq_u32(v, pos_mask), bits_shift);
    vst1q_u32(word_idx, w);
    vst1q_u32(shifts, s);
    uint32_t j = 0;
    while (j < 4) {
      const uint32_t word = word_idx[j];
      uint32_t end = j + 1;
      while (end < 4 && word_idx[end] == word) ++end;
      apply(p, word, shifts + j, end - j, vals + i + j);
      j = end;
    }
  }
  for (; i < n; ++i) {
    vals[i] = tail(p, oids[i]);
  }
}

}  // namespace

void BitmapIncrementBatchNeon(const BitmapParams& p, const uint32_t* oids,
                              uint32_t n, uint32_t* vals) {
  BitmapIncrementBatchNeonImpl(
      p, oids, n, vals,
      [](const BitmapParams& params, uint64_t word, const uint32_t* sh,
         uint32_t count, uint32_t* out) {
        ApplyWordRun(params, word, sh, count, out);
      },
      &ScalarIncrement);
}

void BitmapIncrementBatchExclusiveNeon(const BitmapParams& p,
                                       const uint32_t* oids, uint32_t n,
                                       uint32_t* vals) {
  BitmapIncrementBatchNeonImpl(
      p, oids, n, vals,
      [](const BitmapParams& params, uint64_t word, const uint32_t* sh,
         uint32_t count, uint32_t* out) {
        ApplyWordRunExclusive(params, word, sh, count, out);
      },
      &ScalarIncrementExclusive);
}

void CountIncrementBatchNeon(uint32_t* counts, const uint32_t* oids,
                             uint32_t n) {
  // Fold runs of equal ids into one fetch_add and prefetch the slot a
  // fixed distance ahead to hide the count-table gather latency.
  constexpr uint32_t kAhead = 32;
  uint32_t i = 0;
  while (i < n) {
    if (i + kAhead < n) __builtin_prefetch(counts + oids[i + kAhead], 1, 3);
    const uint32_t oid = oids[i];
    uint32_t run = 1;
    while (i + run < n && oids[i + run] == oid) ++run;
    std::atomic_ref<uint32_t> slot(counts[oid]);
    slot.fetch_add(run, std::memory_order_relaxed);
    i += run;
  }
}

void CountIncrementBatchExclusiveNeon(uint32_t* counts, const uint32_t* oids,
                                      uint32_t n) {
  constexpr uint32_t kAhead = 32;
  uint32_t i = 0;
  while (i < n) {
    if (i + kAhead < n) __builtin_prefetch(counts + oids[i + kAhead], 1, 3);
    const uint32_t oid = oids[i];
    uint32_t run = 1;
    while (i + run < n && oids[i + run] == oid) ++run;
    counts[oid] += run;
    i += run;
  }
}

}  // namespace detail
}  // namespace simd
}  // namespace genie

#endif  // __aarch64__
