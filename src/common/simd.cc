#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace genie {
namespace simd {

namespace detail {

void BitmapIncrementBatchScalar(const BitmapParams& p, const uint32_t* oids,
                                uint32_t n, uint32_t* vals) {
  for (uint32_t i = 0; i < n; ++i) {
    vals[i] = ScalarIncrement(p, oids[i]);
  }
}

void CountIncrementBatchScalar(uint32_t* counts, const uint32_t* oids,
                               uint32_t n) {
  uint32_t i = 0;
  while (i < n) {
    const uint32_t oid = oids[i];
    uint32_t run = 1;
    while (i + run < n && oids[i + run] == oid) ++run;
    std::atomic_ref<uint32_t> slot(counts[oid]);
    slot.fetch_add(run, std::memory_order_relaxed);
    i += run;
  }
}

void BitmapIncrementBatchExclusiveScalar(const BitmapParams& p,
                                         const uint32_t* oids, uint32_t n,
                                         uint32_t* vals) {
  for (uint32_t i = 0; i < n; ++i) {
    vals[i] = ScalarIncrementExclusive(p, oids[i]);
  }
}

void CountIncrementBatchExclusiveScalar(uint32_t* counts, const uint32_t* oids,
                                        uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    ++counts[oids[i]];
  }
}

}  // namespace detail

const char* ArchName(Arch arch) {
  switch (arch) {
    case Arch::kScalar: return "scalar";
    case Arch::kAvx2: return "avx2";
    case Arch::kNeon: return "neon";
  }
  return "unknown";
}

Arch BestSupportedArch() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") ? Arch::kAvx2 : Arch::kScalar;
#elif defined(__aarch64__)
  return Arch::kNeon;  // NEON is baseline on aarch64
#else
  return Arch::kScalar;
#endif
}

const Ops& OpsForArch(Arch arch) {
  static const Ops kScalarOps = {
      Arch::kScalar, 1, &detail::BitmapIncrementBatchScalar,
      &detail::CountIncrementBatchScalar,
      &detail::BitmapIncrementBatchExclusiveScalar,
      &detail::CountIncrementBatchExclusiveScalar};
#if defined(__x86_64__) || defined(__i386__)
  static const Ops kAvx2Ops = {
      Arch::kAvx2, 8, &detail::BitmapIncrementBatchAvx2,
      &detail::CountIncrementBatchAvx2,
      &detail::BitmapIncrementBatchExclusiveAvx2,
      &detail::CountIncrementBatchExclusiveAvx2};
  if (arch == Arch::kAvx2 && BestSupportedArch() == Arch::kAvx2) {
    return kAvx2Ops;
  }
#endif
#if defined(__aarch64__)
  static const Ops kNeonOps = {
      Arch::kNeon, 4, &detail::BitmapIncrementBatchNeon,
      &detail::CountIncrementBatchNeon,
      &detail::BitmapIncrementBatchExclusiveNeon,
      &detail::CountIncrementBatchExclusiveNeon};
  if (arch == Arch::kNeon) return kNeonOps;
#endif
  (void)arch;
  return kScalarOps;
}

namespace {

/// Resolves `GENIE_SIMD` against hardware support, once.
Arch StartupArch() {
  const char* env = std::getenv("GENIE_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "on") == 0) {
    return BestSupportedArch();
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return Arch::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) return Arch::kAvx2;
  if (std::strcmp(env, "neon") == 0) return Arch::kNeon;
  return BestSupportedArch();
}

/// Test-scoped override; null means "use the startup choice".
std::atomic<const Ops*> g_forced_ops{nullptr};

}  // namespace

const Ops& ActiveOps() {
  const Ops* forced = g_forced_ops.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const Ops& startup = OpsForArch(StartupArch());
  return startup;
}

ScopedForceArch::ScopedForceArch(Arch arch)
    : previous_(g_forced_ops.load(std::memory_order_acquire)) {
  g_forced_ops.store(&OpsForArch(arch), std::memory_order_release);
}

ScopedForceArch::~ScopedForceArch() {
  g_forced_ops.store(previous_, std::memory_order_release);
}

}  // namespace simd
}  // namespace genie
