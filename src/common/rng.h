#pragma once

/// \file rng.h
/// Deterministic pseudo-random generation for data synthesis, LSH parameter
/// sampling and tests. All GENIE randomness flows through Rng so experiments
/// are reproducible from a single seed.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace genie {

/// xoshiro256** seeded through SplitMix64. Satisfies the needs of a
/// UniformRandomBitGenerator but we expose explicit distribution helpers so
/// results do not depend on the (implementation-defined) libstdc++
/// distributions.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next64(); }

  uint64_t Next64();
  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform in [0, n). n must be > 0.
  uint64_t UniformU64(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform in [0, 1).
  double UniformDouble();
  /// Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);
  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();
  double Gaussian(double mean, double stddev);
  /// Standard Cauchy (p-stable for p=1 / L1 distance).
  double Cauchy();
  /// Exponential with given rate lambda.
  double Exponential(double lambda);
  /// Gamma(shape, scale) via Marsaglia-Tsang (shape >= small handled too).
  double Gamma(double shape, double scale);
  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A derived, independent generator (for per-worker streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf(s) sampler over {0, .., n-1} using precomputed cumulative weights.
/// Rank 0 is the most frequent item.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);
  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace genie
