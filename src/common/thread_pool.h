#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool used by the GPU simulator to execute blocks of a
/// kernel grid in parallel, and by data generators for parallel synthesis.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace genie {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs body(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until completion. Safe to call from a non-worker
  /// thread only.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Like ParallelFor but hands each worker a contiguous [begin, end) range,
  /// avoiding per-index dispatch overhead.
  void ParallelForRange(
      size_t n, const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_has_work_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Process-wide default pool sized to the hardware concurrency.
ThreadPool* DefaultThreadPool();

}  // namespace genie
