#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool used by the GPU simulator to execute blocks of a
/// kernel grid in parallel, and by data generators for parallel synthesis.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace genie {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Covers all tasks in
  /// flight pool-wide (including unrelated Submit() callers). Calling it
  /// from one of this pool's own workers would self-deadlock and is
  /// checked; waiting on a different pool is fine.
  void Wait();

  /// Runs body(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until completion. Safe from any thread: the
  /// calling thread participates in executing chunks, so completion does not
  /// depend on a free worker (no deadlock when every worker is blocked or
  /// when called from inside a worker of this or another pool). A body
  /// exception — thrown on a worker or on the caller — is captured, the
  /// remaining chunks still run, and the first exception is rethrown on the
  /// calling thread after all chunks finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Like ParallelFor but hands each worker a contiguous [begin, end) range,
  /// avoiding per-index dispatch overhead. `caller_participates` = false
  /// keeps every chunk on pool workers — the simulated GPU needs its block
  /// parallelism bounded by exactly num_threads "SMs" — at the cost of
  /// requiring a free worker for progress; it is forced back on when called
  /// from one of this pool's own workers, where waiting idle could deadlock.
  void ParallelForRange(
      size_t n, const std::function<void(size_t, size_t)>& body,
      bool caller_participates = true);

  /// True when the calling thread is one of this pool's workers.
  bool InWorker() const;

 private:
  struct ForGroup;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_has_work_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Process-wide default pool sized to the hardware concurrency.
ThreadPool* DefaultThreadPool();

}  // namespace genie
