#pragma once

/// \file timer.h
/// Wall-clock timing used by the benchmark harness and the MatchEngine
/// per-stage profiler (Table I of the paper).

#include <chrono>

namespace genie {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds elapsed seconds to *sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.Seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace genie
