#pragma once

/// \file serialize.h
/// Little-endian byte-blob (de)serialization for persisted engine state
/// (bundle metadata, LSH parameters, vocabularies). Writer appends into a
/// growable buffer; Reader is fully bounds-checked and reports malformed or
/// truncated input through Status — it never reads past the blob, so it is
/// safe on hostile bytes (the bundle loader verifies a checksum first, but
/// the reader does not rely on that).

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace genie {
namespace serialize {

class Writer {
 public:
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  /// Unprefixed raw bytes (fixed-layout headers; readers know the length).
  void Bytes(const void* data, size_t len) { Raw(data, len); }

  /// u64 length prefix + bytes.
  void String(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  /// u64 element count + raw little-endian elements.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& data() const { return out_; }

 private:
  void Raw(const void* p, size_t n) {
    if (n != 0) out_.append(static_cast<const char*>(p), n);
  }

  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view blob) : blob_(blob) {}

  Status U8(uint8_t* v) { return Pod(v); }
  Status U32(uint32_t* v) { return Pod(v); }
  Status U64(uint64_t* v) { return Pod(v); }
  Status F64(double* v) { return Pod(v); }

  Status String(std::string* s) {
    uint64_t n = 0;
    GENIE_RETURN_NOT_OK(U64(&n));
    if (n > remaining()) {
      return Status::InvalidArgument("serialized string exceeds blob");
    }
    s->assign(blob_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  /// The count is bounded against the bytes left before any allocation, so
  /// a forged multi-terabyte count cannot drive resize() into bad_alloc.
  template <typename T>
  Status Vec(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    GENIE_RETURN_NOT_OK(U64(&n));
    if (n > remaining() / sizeof(T)) {
      return Status::InvalidArgument("serialized array exceeds blob");
    }
    v->resize(static_cast<size_t>(n));
    if (n != 0) {
      std::memcpy(v->data(), blob_.data() + pos_,
                  static_cast<size_t>(n) * sizeof(T));
      pos_ += static_cast<size_t>(n) * sizeof(T);
    }
    return Status::OK();
  }

  size_t remaining() const { return blob_.size() - pos_; }

  /// Trailing bytes after the last expected field are a format violation.
  Status ExpectEnd() const {
    if (pos_ != blob_.size()) {
      return Status::InvalidArgument("trailing bytes in serialized blob");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Status Pod(T* v) {
    if (remaining() < sizeof(T)) {
      return Status::InvalidArgument("truncated serialized blob");
    }
    std::memcpy(v, blob_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  std::string_view blob_;
  size_t pos_ = 0;
};

}  // namespace serialize
}  // namespace genie
