#pragma once

/// \file simd.h
/// Runtime-dispatched SIMD kernels for the count-and-threshold hot path.
///
/// The match kernel's inner loop is "increment a packed saturating counter
/// per posting" (Bitmap Counter, Section III-C) or "fetch_add a full-width
/// counter per posting" (Count Table, Appendix A). Both are exposed here as
/// batch operations behind a function-pointer table selected once at
/// startup: AVX2 on x86, NEON on aarch64, and a portable scalar arm that is
/// also the semantic reference. `GENIE_SIMD=off|scalar|avx2|neon|auto`
/// overrides the choice; unsupported requests degrade to scalar.
///
/// Batch semantics are defined as *exactly* the sequential per-element
/// semantics: `bitmap_increment_batch(p, oids, n, vals)` must leave the
/// word array and `vals` bit-identical to n in-order calls of the scalar
/// increment. Vector arms exploit commutativity only inside a single
/// atomic word update (one CAS per touched word, with an in-register/
/// in-run conflict pass producing per-lane sequential post values), so the
/// equality holds even under concurrent blocks word-for-word at quiesce.

#include <atomic>
#include <cstdint>

namespace genie {
namespace simd {

enum class Arch : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

const char* ArchName(Arch arch);

/// Packing parameters of a bitmap counter array (mirror of
/// BitmapCounterView's layout so common/ does not depend on core/).
struct BitmapParams {
  uint32_t* words = nullptr;
  uint32_t bits = 32;          // power of two in {1,2,4,8,16,32}
  uint32_t log_per_word = 0;   // log2(32 / bits)
  uint32_t mask = ~0u;         // field mask
  uint32_t cap = ~0u;          // saturation point (<= mask)
};

/// Dispatch table. All pointers are non-null in every arm.
struct Ops {
  Arch arch = Arch::kScalar;
  /// Lanes processed per vector step (1 for scalar). Reported in bench
  /// counters as `simd_lanes`.
  uint32_t lanes = 1;

  /// Saturating packed increment of `oids[0..n)`; `vals[i]` receives the
  /// post-increment value, or 0 when that counter was already at the cap.
  /// Equivalent to n in-order scalar increments (see file comment).
  void (*bitmap_increment_batch)(const BitmapParams& params,
                                 const uint32_t* oids, uint32_t n,
                                 uint32_t* vals) = nullptr;

  /// Equivalent to `counts[oids[i]]++` (atomic, full 32-bit width) for i in
  /// order; adjacent equal oids are combined into one fetch_add.
  void (*count_increment_batch)(uint32_t* counts, const uint32_t* oids,
                                uint32_t n) = nullptr;

  /// Single-writer variants: same results as the shared kernels above, but
  /// with plain (non-atomic) read-modify-write word updates. Legal only
  /// when the caller guarantees no other thread touches this counter array
  /// while the batch runs — the engine proves that whenever a query's
  /// postings all land in one block (the default, unsplit schedule), since
  /// each query owns a private arena and a block's threads run on one
  /// worker. Dropping the lock prefix removes the dominant per-posting cost.
  void (*bitmap_increment_batch_exclusive)(const BitmapParams& params,
                                           const uint32_t* oids, uint32_t n,
                                           uint32_t* vals) = nullptr;
  void (*count_increment_batch_exclusive)(uint32_t* counts,
                                          const uint32_t* oids,
                                          uint32_t n) = nullptr;
};

/// Best arch the current CPU supports (ignores the environment override).
Arch BestSupportedArch();

/// The table chosen at startup from BestSupportedArch() + `GENIE_SIMD`,
/// unless a ScopedForceArch override is active.
const Ops& ActiveOps();

/// Explicit arm, clamped to scalar when the CPU lacks support. Lets one
/// process A/B both dispatch arms (equality tests, bench counters).
const Ops& OpsForArch(Arch arch);

/// RAII test hook: force ActiveOps() to a given arch within a scope.
/// Establish before launching kernels; do not nest across threads.
class ScopedForceArch {
 public:
  explicit ScopedForceArch(Arch arch);
  ~ScopedForceArch();
  ScopedForceArch(const ScopedForceArch&) = delete;
  ScopedForceArch& operator=(const ScopedForceArch&) = delete;

 private:
  const Ops* previous_;
};

namespace detail {

/// Reference single-element increment: the semantic ground truth every
/// vector arm must reproduce lane-for-lane.
inline uint32_t ScalarIncrement(const BitmapParams& p, uint32_t oid) {
  const uint64_t word_idx = static_cast<uint64_t>(oid) >> p.log_per_word;
  const uint32_t shift = (oid & ((1u << p.log_per_word) - 1u)) * p.bits;
  std::atomic_ref<uint32_t> word(p.words[word_idx]);
  uint32_t cur = word.load(std::memory_order_relaxed);
  while (true) {
    const uint32_t field = (cur >> shift) & p.mask;
    if (field >= p.cap) return 0;  // saturated
    const uint32_t next = cur + (1u << shift);
    if (word.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return field + 1;
    }
  }
}

/// Single-writer counterpart of ScalarIncrement: identical result, plain
/// loads/stores. Only reachable through the *_exclusive dispatch entries.
inline uint32_t ScalarIncrementExclusive(const BitmapParams& p, uint32_t oid) {
  const uint64_t word_idx = static_cast<uint64_t>(oid) >> p.log_per_word;
  const uint32_t shift = (oid & ((1u << p.log_per_word) - 1u)) * p.bits;
  const uint32_t cur = p.words[word_idx];
  const uint32_t field = (cur >> shift) & p.mask;
  if (field >= p.cap) return 0;  // saturated
  p.words[word_idx] = cur + (1u << shift);
  return field + 1;
}

/// Conflict pass shared by every arm: applies `count` increments — all
/// targeting the single word `word_idx`, lane j's field at bit offset
/// `shifts[j]` — with ONE compare-and-swap, writing the sequential
/// per-lane post values to `vals`. Lanes that would push a field past the
/// cap contribute nothing and read 0, exactly like sequential saturation.
inline void ApplyWordRun(const BitmapParams& p, uint64_t word_idx,
                         const uint32_t* shifts, uint32_t count,
                         uint32_t* vals) {
  std::atomic_ref<uint32_t> word(p.words[word_idx]);
  uint32_t cur = word.load(std::memory_order_relaxed);
  while (true) {
    uint32_t next = cur;
    for (uint32_t j = 0; j < count; ++j) {
      const uint32_t field = (next >> shifts[j]) & p.mask;
      if (field >= p.cap) {
        vals[j] = 0;
      } else {
        next += (1u << shifts[j]);
        vals[j] = field + 1;
      }
    }
    if (next == cur) return;  // every lane saturated; nothing to publish
    if (word.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Single-writer counterpart of ApplyWordRun: one plain read-modify-write
/// instead of a CAS loop. Per-lane post values are identical.
inline void ApplyWordRunExclusive(const BitmapParams& p, uint64_t word_idx,
                                  const uint32_t* shifts, uint32_t count,
                                  uint32_t* vals) {
  const uint32_t cur = p.words[word_idx];
  uint32_t next = cur;
  for (uint32_t j = 0; j < count; ++j) {
    const uint32_t field = (next >> shifts[j]) & p.mask;
    if (field >= p.cap) {
      vals[j] = 0;
    } else {
      next += (1u << shifts[j]);
      vals[j] = field + 1;
    }
  }
  if (next != cur) p.words[word_idx] = next;
}

// Per-ISA kernels, each defined in its own translation unit so the
// vector code can be compiled with the matching target flags while the
// rest of the build stays baseline.
void BitmapIncrementBatchScalar(const BitmapParams& p, const uint32_t* oids,
                                uint32_t n, uint32_t* vals);
void CountIncrementBatchScalar(uint32_t* counts, const uint32_t* oids,
                               uint32_t n);
void BitmapIncrementBatchExclusiveScalar(const BitmapParams& p,
                                         const uint32_t* oids, uint32_t n,
                                         uint32_t* vals);
void CountIncrementBatchExclusiveScalar(uint32_t* counts, const uint32_t* oids,
                                        uint32_t n);
#if defined(__x86_64__) || defined(__i386__)
void BitmapIncrementBatchAvx2(const BitmapParams& p, const uint32_t* oids,
                              uint32_t n, uint32_t* vals);
void CountIncrementBatchAvx2(uint32_t* counts, const uint32_t* oids,
                             uint32_t n);
void BitmapIncrementBatchExclusiveAvx2(const BitmapParams& p,
                                       const uint32_t* oids, uint32_t n,
                                       uint32_t* vals);
void CountIncrementBatchExclusiveAvx2(uint32_t* counts, const uint32_t* oids,
                                      uint32_t n);
#endif
#if defined(__aarch64__)
void BitmapIncrementBatchNeon(const BitmapParams& p, const uint32_t* oids,
                              uint32_t n, uint32_t* vals);
void CountIncrementBatchNeon(uint32_t* counts, const uint32_t* oids,
                             uint32_t n);
void BitmapIncrementBatchExclusiveNeon(const BitmapParams& p,
                                       const uint32_t* oids, uint32_t n,
                                       uint32_t* vals);
void CountIncrementBatchExclusiveNeon(uint32_t* counts, const uint32_t* oids,
                                      uint32_t n);
#endif

}  // namespace detail
}  // namespace simd
}  // namespace genie
