#pragma once

/// \file logging.h
/// Minimal logging and checked-invariant machinery. GENIE_CHECK is used for
/// programming errors (contract violations); recoverable conditions go
/// through Status (see status.h).

#include <ostream>
#include <sstream>

namespace genie {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Emits the message; aborts if level is kFatal.

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// `Voidify() & stream` gives the whole expression type void while keeping
/// `<<` chains after a GENIE_CHECK legal (operator& binds looser than <<).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace genie

#define GENIE_LOG(level)                                               \
  ::genie::internal::LogMessage(::genie::internal::LogLevel::k##level, \
                                __FILE__, __LINE__)                    \
      .stream()

#define GENIE_CHECK(cond)                                            \
  (cond) ? static_cast<void>(0)                                      \
         : ::genie::internal::Voidify() &                            \
               ::genie::internal::LogMessage(                        \
                   ::genie::internal::LogLevel::kFatal, __FILE__,    \
                   __LINE__)                                         \
                       .stream()                                     \
                   << "Check failed: " #cond " "

#define GENIE_DCHECK(cond) GENIE_CHECK(cond)
