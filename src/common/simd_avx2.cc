/// \file simd_avx2.cc
/// AVX2 arm of the count-and-threshold kernels. Compiled with -mavx2 for
/// this translation unit only; callers reach it through the dispatch table
/// so a non-AVX2 host never executes these instructions.

#include "common/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace genie {
namespace simd {
namespace detail {

namespace {

/// Lane j of the result holds lane j-1 of `v` (lane 0 holds lane 0, which
/// the caller masks off): used to compare each lane against its left
/// neighbour in one instruction.
inline __m256i ShiftLanesLeftByOne(__m256i v) {
  const __m256i idx = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
  return _mm256_permutevar8x32_epi32(v, idx);
}

/// Bit j set when lane j equals lane j-1 (bit 0 always clear).
inline uint32_t NeighbourEqualMask(__m256i v) {
  const __m256i eq = _mm256_cmpeq_epi32(v, ShiftLanesLeftByOne(v));
  return static_cast<uint32_t>(
             _mm256_movemask_ps(_mm256_castsi256_ps(eq))) &
         0xFEu;
}

/// Shared skeleton of the two AVX2 bitmap arms: vectorial word/shift
/// computation for 8 lanes at a time, then an in-register conflict pass
/// that commits every run of same-word lanes through `apply` (one atomic
/// CAS for the shared arm, one plain read-modify-write for the exclusive
/// single-writer arm).
template <typename ApplyFn>
inline void BitmapIncrementBatchAvx2Impl(const BitmapParams& p,
                                         const uint32_t* oids, uint32_t n,
                                         uint32_t* vals, ApplyFn&& apply,
                                         uint32_t (*tail)(const BitmapParams&,
                                                          uint32_t)) {
  const __m128i word_shift = _mm_cvtsi32_si128(static_cast<int>(p.log_per_word));
  const __m128i bits_shift =
      _mm_cvtsi32_si128(__builtin_ctz(p.bits));  // bits is a power of two
  const __m256i pos_mask =
      _mm256_set1_epi32(static_cast<int>((1u << p.log_per_word) - 1u));
  alignas(32) uint32_t word_idx[8];
  alignas(32) uint32_t shifts[8];

  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(oids + i));
    // word index and in-word bit offset for all 8 lanes at once.
    const __m256i w = _mm256_srl_epi32(v, word_shift);
    const __m256i s =
        _mm256_sll_epi32(_mm256_and_si256(v, pos_mask), bits_shift);
    _mm256_store_si256(reinterpret_cast<__m256i*>(word_idx), w);
    _mm256_store_si256(reinterpret_cast<__m256i*>(shifts), s);
    // In-register conflict pass: one neighbour compare finds every run of
    // lanes that lands in the same counter word, then each run commits
    // once with the combined (cap-clamped) deltas.
    uint32_t eq = NeighbourEqualMask(w);
    uint32_t j = 0;
    while (j < 8) {
      uint32_t end = j + 1;
      while (end < 8 && ((eq >> end) & 1u)) ++end;
      apply(p, word_idx[j], shifts + j, end - j, vals + i + j);
      j = end;
    }
  }
  for (; i < n; ++i) {
    vals[i] = tail(p, oids[i]);
  }
}

}  // namespace

void BitmapIncrementBatchAvx2(const BitmapParams& p, const uint32_t* oids,
                              uint32_t n, uint32_t* vals) {
  BitmapIncrementBatchAvx2Impl(
      p, oids, n, vals,
      [](const BitmapParams& params, uint64_t word, const uint32_t* sh,
         uint32_t count, uint32_t* out) {
        ApplyWordRun(params, word, sh, count, out);
      },
      &ScalarIncrement);
}

void BitmapIncrementBatchExclusiveAvx2(const BitmapParams& p,
                                       const uint32_t* oids, uint32_t n,
                                       uint32_t* vals) {
  // Without the lock prefix the bottleneck shifts from the atomic to plain
  // load/shift/store dependency chains, which out-of-order cores already
  // overlap well. No conflict pass is needed here: a single writer doing
  // in-order read-modify-writes gets sequential semantics for free even
  // when consecutive lanes share a word (store-to-load forwarding), so the
  // vector part is just the index math for 8 lanes at a time.
  const __m128i word_shift = _mm_cvtsi32_si128(static_cast<int>(p.log_per_word));
  const __m128i bits_shift = _mm_cvtsi32_si128(__builtin_ctz(p.bits));
  const __m256i pos_mask =
      _mm256_set1_epi32(static_cast<int>((1u << p.log_per_word) - 1u));
  alignas(32) uint32_t word_idx[8];
  alignas(32) uint32_t shifts[8];

  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(oids + i));
    const __m256i w = _mm256_srl_epi32(v, word_shift);
    const __m256i s =
        _mm256_sll_epi32(_mm256_and_si256(v, pos_mask), bits_shift);
    _mm256_store_si256(reinterpret_cast<__m256i*>(word_idx), w);
    _mm256_store_si256(reinterpret_cast<__m256i*>(shifts), s);
    for (uint32_t j = 0; j < 8; ++j) {
      const uint32_t cur = p.words[word_idx[j]];
      const uint32_t field = (cur >> shifts[j]) & p.mask;
      if (field >= p.cap) {
        vals[i + j] = 0;
      } else {
        p.words[word_idx[j]] = cur + (1u << shifts[j]);
        vals[i + j] = field + 1;
      }
    }
  }
  for (; i < n; ++i) {
    vals[i] = ScalarIncrementExclusive(p, oids[i]);
  }
}

void CountIncrementBatchAvx2(uint32_t* counts, const uint32_t* oids,
                             uint32_t n) {
  // The count table is a plain uint32 row far larger than L1; hide the
  // random-access latency by prefetching the slot a fixed distance ahead,
  // and fold runs of equal ids into one fetch_add.
  constexpr uint32_t kAhead = 32;
  uint32_t i = 0;
  while (i < n) {
    if (i + kAhead < n) {
      _mm_prefetch(reinterpret_cast<const char*>(counts + oids[i + kAhead]),
                   _MM_HINT_T0);
    }
    const uint32_t oid = oids[i];
    uint32_t run = 1;
    while (i + run < n && oids[i + run] == oid) ++run;
    std::atomic_ref<uint32_t> slot(counts[oid]);
    slot.fetch_add(run, std::memory_order_relaxed);
    i += run;
  }
}

void CountIncrementBatchExclusiveAvx2(uint32_t* counts, const uint32_t* oids,
                                      uint32_t n) {
  constexpr uint32_t kAhead = 32;
  uint32_t i = 0;
  while (i < n) {
    if (i + kAhead < n) {
      _mm_prefetch(reinterpret_cast<const char*>(counts + oids[i + kAhead]),
                   _MM_HINT_T0);
    }
    const uint32_t oid = oids[i];
    uint32_t run = 1;
    while (i + run < n && oids[i + run] == oid) ++run;
    counts[oid] += run;
    i += run;
  }
}

}  // namespace detail
}  // namespace simd
}  // namespace genie

#endif  // x86
