#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace genie {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  GENIE_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GENIE_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Cauchy() {
  // Ratio of two independent standard normals is standard Cauchy.
  double denom;
  do {
    denom = Gaussian();
  } while (std::abs(denom) < 1e-12);
  return Gaussian() / denom;
}

double Rng::Exponential(double lambda) {
  GENIE_DCHECK(lambda > 0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

double Rng::Gamma(double shape, double scale) {
  GENIE_DCHECK(shape > 0 && scale > 0);
  if (shape < 1.0) {
    // Boost via Gamma(shape+1) * U^(1/shape).
    const double u = std::max(UniformDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(Next64()); }

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  GENIE_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace genie
