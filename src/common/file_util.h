#pragma once

/// \file file_util.h
/// Small shared file-IO helpers for the binary (de)serialization paths
/// (index_io, engine bundles): RAII FILE ownership, size probing, raw POD
/// reads, and the checked-write sequence that verifies stream health
/// through the final flush (buffered writes only hit the OS at flush time,
/// so a full disk would otherwise leave a truncated file behind a clean
/// return).

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace genie {
namespace file_util {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Size of the already-open file, restoring the read position.
inline Result<uint64_t> FileBytes(std::FILE* f, const std::string& path) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  return static_cast<uint64_t>(end);
}

/// Reads one trivially-copyable value; false on short read.
template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

/// Writes the concatenation of `pieces` to `path`, replacing any existing
/// file, and verifies stream health through the final flush. IOError on
/// any failure (cannot open, short write, full disk).
inline Status WriteFileChecked(const std::string& path,
                               std::initializer_list<std::string_view> pieces) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (const std::string_view piece : pieces) {
    if (!piece.empty() &&
        std::fwrite(piece.data(), 1, piece.size(), f.get()) != piece.size()) {
      return Status::IOError("short write to " + path);
    }
  }
  if (std::fflush(f.get()) != 0 || std::ferror(f.get())) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace file_util
}  // namespace genie
