#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/logging.h"

namespace genie {

namespace {
/// Which pool (if any) owns the calling thread; lets Wait() catch the
/// self-deadlocking wait-from-own-worker case.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

bool ThreadPool::InWorker() const { return t_worker_pool == this; }

/// Completion state of one ParallelForRange call. Chunks are claimed through
/// `next` by workers and by the calling thread alike; the caller waits on
/// `done` reaching `chunks` instead of pool-wide idleness, so concurrent
/// ParallelForRange calls and unrelated Submit() tasks never extend each
/// other's waits.
struct ThreadPool::ForGroup {
  ForGroup(size_t n_, size_t chunk_, size_t chunks_,
           const std::function<void(size_t, size_t)>& body_)
      : n(n_), chunk(chunk_), chunks(chunks_), body(body_) {}

  /// Claims and runs chunks until none are left. Never throws: a body
  /// exception (on a worker or the caller) is captured for the calling
  /// thread to rethrow, the chunk still counts as done, and the remaining
  /// chunks run — so `done` always reaches `chunks`, the caller's wait
  /// terminates, and `body` plus whatever it captures stay alive for every
  /// helper still using them.
  void Drain() {
    while (true) {
      const size_t c = next.fetch_add(1);
      if (c >= chunks) return;
      const size_t begin = c * chunk;
      const size_t end = std::min(begin + chunk, n);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      size_t finished;
      {
        std::lock_guard<std::mutex> lock(mu);
        finished = ++done;
      }
      if (finished == chunks) cv.notify_all();
    }
  }

  const size_t n;
  const size_t chunk;
  const size_t chunks;
  const std::function<void(size_t, size_t)>& body;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  std::exception_ptr error;  // first body exception, rethrown by the caller
};

ThreadPool::ThreadPool(size_t num_threads) {
  GENIE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_has_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_has_work_.notify_one();
}

void ThreadPool::Wait() {
  GENIE_CHECK(!InWorker())
      << "ThreadPool::Wait() from one of this pool's own workers would "
         "deadlock (the waiting task counts as in flight)";
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ParallelForRange(n, [&body](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

void ThreadPool::ParallelForRange(
    size_t n, const std::function<void(size_t, size_t)>& body,
    bool caller_participates) {
  if (n == 0) return;
  // From one of this pool's own workers, waiting without participating
  // could deadlock (every worker may be occupied by a waiting caller), so
  // participation wins over the caller's preference.
  if (InWorker()) caller_participates = true;
  const size_t workers = num_threads();
  // Over-decompose 4x for dynamic balance on skewed work.
  const size_t chunks = std::min(n, workers * 4);
  const size_t chunk = (n + chunks - 1) / chunks;
  if (chunks == 1 && caller_participates) {
    body(0, n);
    return;
  }
  auto group = std::make_shared<ForGroup>(n, chunk, chunks, body);
  // Helpers drain the shared claim counter, so enough to saturate the pool
  // suffices — submitting one per chunk would only queue no-ops past
  // num_threads, and kernel launches run this path on every multi-block
  // grid.
  const size_t helpers =
      std::min(chunks - (caller_participates ? 1 : 0), workers);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([group] { group->Drain(); });
  }
  if (caller_participates) group->Drain();
  {
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait(lock, [&group] { return group->done == group->chunks; });
  }
  if (group->error) std::rethrow_exception(group->error);
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_has_work_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace genie
