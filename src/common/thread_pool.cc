#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace genie {

ThreadPool::ThreadPool(size_t num_threads) {
  GENIE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_has_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_has_work_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ParallelForRange(n, [&body](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

void ThreadPool::ParallelForRange(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t workers = num_threads();
  // Over-decompose 4x for dynamic balance on skewed work.
  const size_t chunks = std::min(n, workers * 4);
  const size_t chunk = (n + chunks - 1) / chunks;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(begin + chunk, n);
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_has_work_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace genie
