#include "common/status.h"

namespace genie {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace genie
