#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace genie {
namespace internal {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= g_level.load() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace genie
