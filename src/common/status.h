#pragma once

/// \file status.h
/// Error model for GENIE. Library code reports recoverable failures through
/// `Status` / `Result<T>` rather than exceptions, following the conventions
/// of Arrow and RocksDB. Programming errors (violated preconditions the
/// caller cannot recover from) use GENIE_CHECK which aborts.

#include <cstdint>
#include <string>
#include <utility>

namespace genie {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kIOError,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Internal(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status IOError(std::string msg);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace genie

/// Propagates a non-OK Status to the caller.
#define GENIE_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::genie::Status _genie_status = (expr);      \
    if (!_genie_status.ok()) return _genie_status; \
  } while (false)
