#pragma once

/// \file bit_util.h
/// Small bit-manipulation helpers shared by the packed bitmap counter and
/// the hash tables.

#include <cstdint>

namespace genie {
namespace bit_util {

/// Smallest power of two >= v (v <= 2^63).
constexpr uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return 1ULL << (64 - __builtin_clzll(v - 1));
}

constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Number of bits needed to represent values in [0, v] (v >= 0).
constexpr uint32_t BitsFor(uint64_t v) {
  return v == 0 ? 1 : 64 - __builtin_clzll(v);
}

/// Ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// 64-bit finalizer (from MurmurHash3) — a cheap, well-mixed integer hash.
constexpr uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace bit_util
}  // namespace genie
