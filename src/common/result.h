#pragma once

/// \file result.h
/// `Result<T>` — a value-or-Status, the return type of fallible factory
/// functions (e.g. index builders). Modeled after arrow::Result.

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace genie {

template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK status. Constructing from an OK status is a
  /// programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    GENIE_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Value access. Calling on an error Result is a programming error.
  const T& ValueOrDie() const& {
    GENIE_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    GENIE_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    GENIE_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace genie

#define GENIE_CONCAT_IMPL(a, b) a##b
#define GENIE_CONCAT(a, b) GENIE_CONCAT_IMPL(a, b)

/// GENIE_ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>); on
/// error returns the Status, otherwise assigns the value to `lhs`.
#define GENIE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto GENIE_CONCAT(_genie_result_, __LINE__) = (rexpr);        \
  if (!GENIE_CONCAT(_genie_result_, __LINE__).ok())             \
    return GENIE_CONCAT(_genie_result_, __LINE__).status();     \
  lhs = std::move(GENIE_CONCAT(_genie_result_, __LINE__)).ValueOrDie()
