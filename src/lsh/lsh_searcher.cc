#include "lsh/lsh_searcher.h"

#include <algorithm>

namespace genie {
namespace lsh {

LshSearcher::LshSearcher(const data::PointMatrix* points,
                         LshTransformer transformer, InvertedIndex index)
    : points_(points),
      transformer_(std::move(transformer)),
      index_(std::move(index)) {}

Result<std::unique_ptr<LshSearcher>> LshSearcher::Create(
    const data::PointMatrix* points,
    std::shared_ptr<const VectorLshFamily> family,
    const LshSearchOptions& options) {
  if (points == nullptr) return Status::InvalidArgument("points is null");
  LshTransformer transformer(std::move(family), options.transform);
  GENIE_ASSIGN_OR_RETURN(InvertedIndex index,
                         transformer.BuildIndex(*points, options.build));
  return Restore(points, std::move(transformer), std::move(index), options);
}

Result<std::unique_ptr<LshSearcher>> LshSearcher::Restore(
    const data::PointMatrix* points, LshTransformer transformer,
    InvertedIndex index, const LshSearchOptions& options,
    uint32_t appended_objects) {
  if (points == nullptr) return Status::InvalidArgument("points is null");
  if (index.num_objects() < points->num_points() ||
      index.num_objects() > points->num_points() + appended_objects) {
    return Status::InvalidArgument(
        "index object count does not match the points dataset");
  }
  if (index.vocab_size() != transformer.encoder().vocab_size()) {
    return Status::InvalidArgument(
        "index vocabulary does not match the LSH transform");
  }
  std::unique_ptr<LshSearcher> searcher(
      new LshSearcher(points, std::move(transformer), std::move(index)));
  MatchEngineOptions engine_options = options.engine;
  // Every item is one hash function; an object collides with an item at
  // most once, so the count bound is exactly m.
  engine_options.max_count = searcher->transformer_.family().num_functions();
  EngineBackendOptions backend_options = options.backend;
  backend_options.shard_build = options.build;
  GENIE_ASSIGN_OR_RETURN(
      searcher->engine_,
      EngineBackend::Create(&searcher->index_, engine_options,
                            backend_options));
  return searcher;
}

Result<std::vector<std::vector<AnnMatch>>> LshSearcher::MatchBatch(
    const data::PointMatrix& queries) {
  GENIE_ASSIGN_OR_RETURN(PreparedBatch batch, Prepare(queries));
  return ExecutePrepared(std::move(batch));
}

Result<LshSearcher::PreparedBatch> LshSearcher::Prepare(
    const data::PointMatrix& queries) {
  PreparedBatch batch;
  batch.compiled.resize(queries.num_points());
  for (uint32_t i = 0; i < queries.num_points(); ++i) {
    batch.compiled[i] = transformer_.MakeQuery(queries.row(i));
  }
  GENIE_ASSIGN_OR_RETURN(batch.staged, engine_->Prepare(batch.compiled));
  return batch;
}

Result<std::vector<std::vector<AnnMatch>>> LshSearcher::ExecutePrepared(
    PreparedBatch batch) {
  GENIE_ASSIGN_OR_RETURN(std::vector<QueryResult> raw,
                         engine_->Execute(std::move(batch.staged)));
  const double m = transformer_.family().num_functions();
  std::vector<std::vector<AnnMatch>> results(raw.size());
  for (size_t q = 0; q < raw.size(); ++q) {
    results[q].reserve(raw[q].entries.size());
    for (const TopKEntry& e : raw[q].entries) {
      results[q].push_back(AnnMatch{e.id, e.count, e.count / m});
    }
  }
  return results;
}

Result<std::vector<std::vector<ObjectId>>> LshSearcher::KnnBatch(
    const data::PointMatrix& queries, uint32_t k_nn, uint32_t p) {
  GENIE_ASSIGN_OR_RETURN(std::vector<std::vector<AnnMatch>> matches,
                         MatchBatch(queries));
  std::vector<std::vector<ObjectId>> results(matches.size());
  for (size_t q = 0; q < matches.size(); ++q) {
    auto query_row = queries.row(static_cast<uint32_t>(q));
    std::vector<std::pair<double, ObjectId>> ranked;
    ranked.reserve(matches[q].size());
    for (const AnnMatch& m : matches[q]) {
      const double d = p == 1 ? data::L1Distance(points_->row(m.id), query_row)
                              : data::L2Distance(points_->row(m.id), query_row);
      ranked.emplace_back(d, m.id);
    }
    std::sort(ranked.begin(), ranked.end());
    results[q].reserve(std::min<size_t>(k_nn, ranked.size()));
    for (size_t i = 0; i < ranked.size() && i < k_nn; ++i) {
      results[q].push_back(ranked[i].second);
    }
  }
  return results;
}

}  // namespace lsh
}  // namespace genie
