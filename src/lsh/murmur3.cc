#include "lsh/murmur3.h"

#include <cstring>

namespace genie {
namespace lsh {

namespace {
inline uint32_t Rotl32(uint32_t x, int8_t r) {
  return (x << r) | (x >> (32 - r));
}
inline uint64_t Rotl64(uint64_t x, int8_t r) {
  return (x << r) | (x >> (64 - r));
}
inline uint32_t Fmix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85EBCA6B;
  h ^= h >> 13;
  h *= 0xC2B2AE35;
  h ^= h >> 16;
  return h;
}
inline uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}
inline uint32_t GetBlock32(const uint8_t* p, size_t i) {
  uint32_t v;
  std::memcpy(&v, p + i * 4, 4);
  return v;
}
inline uint64_t GetBlock64(const uint8_t* p, size_t i) {
  uint64_t v;
  std::memcpy(&v, p + i * 8, 8);
  return v;
}
}  // namespace

uint32_t Murmur3_32(const void* data, size_t len, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 4;
  uint32_t h1 = seed;
  const uint32_t c1 = 0xCC9E2D51;
  const uint32_t c2 = 0x1B873593;

  for (size_t i = 0; i < nblocks; ++i) {
    uint32_t k1 = GetBlock32(bytes, i);
    k1 *= c1;
    k1 = Rotl32(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl32(h1, 13);
    h1 = h1 * 5 + 0xE6546B64;
  }

  const uint8_t* tail = bytes + nblocks * 4;
  uint32_t k1 = 0;
  switch (len & 3) {
    case 3:
      k1 ^= static_cast<uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= tail[0];
      k1 *= c1;
      k1 = Rotl32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }
  h1 ^= static_cast<uint32_t>(len);
  return Fmix32(h1);
}

uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 16;
  uint64_t h1 = seed;
  uint64_t h2 = seed;
  const uint64_t c1 = 0x87C37B91114253D5ULL;
  const uint64_t c2 = 0x4CF5AD432745937FULL;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = GetBlock64(bytes, i * 2 + 0);
    uint64_t k2 = GetBlock64(bytes, i * 2 + 1);
    k1 *= c1;
    k1 = Rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729;
    k2 *= c2;
    k2 = Rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = Rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5;
  }

  const uint8_t* tail = bytes + nblocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      k2 *= c2;
      k2 = Rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      k1 *= c1;
      k1 = Rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint64_t>(len);
  h2 ^= static_cast<uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = Fmix64(h1);
  h2 = Fmix64(h2);
  h1 += h2;
  return h1;
}

}  // namespace lsh
}  // namespace genie
