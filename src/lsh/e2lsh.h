#pragma once

/// \file e2lsh.h
/// The p-stable LSH family of Datar et al. (Eqn. 10):
///     h(q) = floor((a . q + b) / w)
/// with `a` drawn from a p-stable distribution (Gaussian for L2, Cauchy for
/// L1) and b ~ U[0, w). Its collision probability psi_p(delta) (Eqn. 11) is
/// strictly decreasing in the l_p distance, so it defines the similarity
/// measure sim_lp of Eqn. 12 that GENIE's tau-ANN search operates under
/// (Section IV-B3).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "lsh/lsh_family.h"

namespace genie {
namespace lsh {

struct E2LshOptions {
  uint32_t num_functions = 237;  // paper default from eps = delta = 0.06
  uint32_t dim = 0;              // required
  double bucket_width = 4.0;     // w; trade-off discussed in Section VI-D1
  /// p of the l_p norm; 1 (Cauchy projections) or 2 (Gaussian projections).
  uint32_t p = 2;
  uint64_t seed = 42;
};

class E2LshFamily : public VectorLshFamily {
 public:
  static Result<std::unique_ptr<E2LshFamily>> Create(
      const E2LshOptions& options);

  uint32_t num_functions() const override { return options_.num_functions; }
  uint64_t RawHash(uint32_t i, std::span<const float> point) const override;

  /// psi_p(||p - q||_p): the closed form for p = 2 uses the Gaussian CDF;
  /// p = 1 uses the Cauchy integral form.
  double CollisionProbability(std::span<const float> p,
                              std::span<const float> q) const override;

  /// The similarity measure as a function of distance (Eqn. 11/12),
  /// exposed for tests of monotonicity.
  double CollisionProbabilityForDistance(double distance) const;

  const E2LshOptions& options() const { return options_; }

  /// Bundle persistence: the explicit coefficients (projections + offsets)
  /// are written alongside the options, so a deserialized family hashes
  /// queries identically even if the Rng sampling ever changes.
  void Serialize(serialize::Writer* writer) const;
  static Result<std::unique_ptr<E2LshFamily>> Deserialize(
      serialize::Reader* reader);

 private:
  explicit E2LshFamily(const E2LshOptions& options);
  E2LshFamily() = default;

  E2LshOptions options_;
  std::vector<float> projections_;  // num_functions x dim
  std::vector<double> offsets_;     // num_functions
};

}  // namespace lsh
}  // namespace genie
