#pragma once

/// \file murmur3.h
/// MurmurHash3 (Appleby, public domain algorithm), the random projection
/// function the paper selects for the re-hashing mechanism (Section IV-A2):
/// LSH signatures with huge domains are projected into a finite bucket set.

#include <cstddef>
#include <cstdint>

namespace genie {
namespace lsh {

/// MurmurHash3_x86_32 over an arbitrary byte buffer.
uint32_t Murmur3_32(const void* data, size_t len, uint32_t seed);

/// 64-bit variant: the low half of MurmurHash3_x64_128.
uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed);

/// Convenience for hashing a single 64-bit signature value.
inline uint64_t Murmur3_64(uint64_t value, uint64_t seed) {
  return Murmur3_64(&value, sizeof(value), seed);
}

}  // namespace lsh
}  // namespace genie
