#pragma once

/// \file set_searcher.h
/// tau-ANN search over *sets* under Jaccard similarity (Section II-B1 lists
/// the Jaccard kernel among the kernelized measures GENIE supports): the
/// set-LSH analogue of LshSearcher, using a SetLshFamily (MinHash) plus the
/// same re-hashing and match-count machinery.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/engine_backend.h"
#include "index/vocabulary.h"
#include "lsh/lsh_family.h"
#include "lsh/lsh_searcher.h"

namespace genie {
namespace lsh {

/// A dataset of element-id sets (need not be sorted or deduplicated).
using SetDataset = std::vector<std::vector<uint32_t>>;

struct SetSearchOptions {
  LshTransformOptions transform;
  MatchEngineOptions engine;  // engine.k = candidates kept per query
  IndexBuildOptions build;
  EngineBackendOptions backend;
};

class SetLshSearcher {
 public:
  /// Builds the index over `sets` (must outlive the searcher).
  static Result<std::unique_ptr<SetLshSearcher>> Create(
      const SetDataset* sets, std::shared_ptr<const SetLshFamily> family,
      const SetSearchOptions& options);

  /// Reassembles a searcher from persisted state (bundle open): the
  /// re-hash seeds and index come from the bundle instead of being derived
  /// from options.transform.seed / rebuilt from the dataset.
  /// `appended_objects` (> 0 only on mutated v2 bundles) is the number of
  /// objects inserted after the base dataset; the index holds between
  /// sets->size() and sets->size() + appended_objects objects.
  static Result<std::unique_ptr<SetLshSearcher>> Restore(
      const SetDataset* sets, std::shared_ptr<const SetLshFamily> family,
      const SetSearchOptions& options, std::vector<uint64_t> rehash_seeds,
      InvertedIndex index, uint32_t appended_objects = 0);

  /// Candidates per query in descending match-count order; entry 0 is the
  /// tau-ANN under the family's similarity (Jaccard for MinHash), and
  /// count/m estimates that similarity (Eqn. 7). Equivalent to
  /// ExecutePrepared(Prepare(queries)).
  Result<std::vector<std::vector<AnnMatch>>> MatchBatch(
      std::span<const std::vector<uint32_t>> queries);

  /// Two-phase MatchBatch for the streaming pipeline (see
  /// LshSearcher::Prepare): MinHash transform + backend staging, then
  /// execution; Prepare may run concurrently with ExecutePrepared.
  struct PreparedBatch {
    std::vector<Query> compiled;
    EngineBackend::StagedChunk staged;
  };
  Result<PreparedBatch> Prepare(
      std::span<const std::vector<uint32_t>> queries);
  Result<std::vector<std::vector<AnnMatch>>> ExecutePrepared(
      PreparedBatch batch);

  /// kNN by exact Jaccard similarity over the top match-count candidates
  /// (descending similarity).
  Result<std::vector<std::vector<ObjectId>>> KnnBatch(
      std::span<const std::vector<uint32_t>> queries, uint32_t k_nn);

  MatchProfile profile() const { return engine_->profile(); }
  const InvertedIndex& index() const { return index_; }
  const EngineBackend& backend() const { return *engine_; }
  EngineBackend& backend() { return *engine_; }
  const SetLshFamily& family() const { return *family_; }
  const LshTransformOptions& transform_options() const {
    return options_.transform;
  }
  const std::vector<uint64_t>& rehash_seeds() const { return rehash_seeds_; }

  /// MinHash + re-hash transform of one set into its m keywords — the same
  /// transform the index was built with. Public so live insertion can
  /// extract an inserted set's keywords.
  std::vector<Keyword> Transform(std::span<const uint32_t> set) const;

 private:
  SetLshSearcher(const SetDataset* sets,
                 std::shared_ptr<const SetLshFamily> family,
                 const SetSearchOptions& options);
  Status Init();
  /// Creates the EngineBackend over the (built or restored) index_.
  Status SetUpEngine();

  const SetDataset* sets_;
  std::shared_ptr<const SetLshFamily> family_;
  SetSearchOptions options_;
  DimValueEncoder encoder_;
  std::vector<uint64_t> rehash_seeds_;
  InvertedIndex index_;
  std::unique_ptr<EngineBackend> engine_;
};

}  // namespace lsh
}  // namespace genie
