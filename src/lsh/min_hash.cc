#include "lsh/min_hash.h"

#include <algorithm>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/rng.h"

namespace genie {
namespace lsh {

MinHashFamily::MinHashFamily(const MinHashOptions& options)
    : options_(options) {
  Rng rng(options_.seed);
  seeds_.resize(options_.num_functions);
  for (auto& s : seeds_) s = rng.Next64();
}

Result<std::unique_ptr<MinHashFamily>> MinHashFamily::Create(
    const MinHashOptions& options) {
  if (options.num_functions == 0) {
    return Status::InvalidArgument("num_functions must be >= 1");
  }
  return std::unique_ptr<MinHashFamily>(new MinHashFamily(options));
}

void MinHashFamily::Serialize(serialize::Writer* writer) const {
  writer->U32(options_.num_functions);
  writer->U64(options_.seed);
  writer->Vec(seeds_);
}

Result<std::unique_ptr<MinHashFamily>> MinHashFamily::Deserialize(
    serialize::Reader* reader) {
  MinHashOptions options;
  GENIE_RETURN_NOT_OK(reader->U32(&options.num_functions));
  GENIE_RETURN_NOT_OK(reader->U64(&options.seed));
  if (options.num_functions == 0) {
    return Status::InvalidArgument("malformed MinHash parameters");
  }
  std::vector<uint64_t> seeds;
  GENIE_RETURN_NOT_OK(reader->Vec(&seeds));
  if (seeds.size() != options.num_functions) {
    return Status::InvalidArgument("malformed MinHash seeds");
  }
  std::unique_ptr<MinHashFamily> family(new MinHashFamily(options));
  family->seeds_ = std::move(seeds);
  return family;
}

uint64_t MinHashFamily::RawHash(uint32_t i,
                                std::span<const uint32_t> set) const {
  GENIE_DCHECK(i < options_.num_functions);
  uint64_t best = ~0ULL;
  for (uint32_t e : set) {
    best = std::min(best, bit_util::Mix64(seeds_[i] ^ e));
  }
  return best;
}

double MinHashFamily::CollisionProbability(std::span<const uint32_t> a,
                                           std::span<const uint32_t> b) const {
  std::vector<uint32_t> sa(a.begin(), a.end());
  std::vector<uint32_t> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace lsh
}  // namespace genie
