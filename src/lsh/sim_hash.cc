#include "lsh/sim_hash.h"

#include <cmath>

#include "common/logging.h"

namespace genie {
namespace lsh {

SimHashFamily::SimHashFamily(const SimHashOptions& options)
    : options_(options) {
  Rng rng(options_.seed);
  projections_.resize(static_cast<size_t>(options_.num_functions) *
                      options_.dim);
  for (auto& v : projections_) v = static_cast<float>(rng.Gaussian());
}

Result<std::unique_ptr<SimHashFamily>> SimHashFamily::Create(
    const SimHashOptions& options) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be >= 1");
  if (options.num_functions == 0) {
    return Status::InvalidArgument("num_functions must be >= 1");
  }
  return std::unique_ptr<SimHashFamily>(new SimHashFamily(options));
}

uint64_t SimHashFamily::RawHash(uint32_t i,
                                std::span<const float> point) const {
  GENIE_DCHECK(i < options_.num_functions);
  GENIE_DCHECK(point.size() == options_.dim);
  const float* a = &projections_[static_cast<size_t>(i) * options_.dim];
  double dot = 0;
  for (uint32_t d = 0; d < options_.dim; ++d) {
    dot += static_cast<double>(a[d]) * point[d];
  }
  return dot >= 0 ? 1 : 0;
}

double SimHashFamily::CollisionProbability(std::span<const float> p,
                                           std::span<const float> q) const {
  GENIE_CHECK(p.size() == q.size());
  double dot = 0, np = 0, nq = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    dot += static_cast<double>(p[i]) * q[i];
    np += static_cast<double>(p[i]) * p[i];
    nq += static_cast<double>(q[i]) * q[i];
  }
  if (np == 0 || nq == 0) return 1.0;
  double c = dot / std::sqrt(np * nq);
  c = std::min(1.0, std::max(-1.0, c));
  return 1.0 - std::acos(c) / M_PI;
}

}  // namespace lsh
}  // namespace genie
