#pragma once

/// \file lsh_family.h
/// Interfaces for locality-sensitive hash families (Section IV). A family
/// provides m functions; function i maps a point to a raw 64-bit signature
/// (for families whose true signature is larger — e.g. Random Binning over
/// d dimensions — the implementation digests it, which is itself the first
/// half of the paper's re-hashing step). The re-hashing mechanism
/// (Fig. 7) then projects raw signatures into a finite domain [0, D).

#include <cstdint>
#include <span>

namespace genie {
namespace lsh {

/// An LSH family over dense float vectors.
class VectorLshFamily {
 public:
  virtual ~VectorLshFamily() = default;

  /// Number of hash functions m.
  virtual uint32_t num_functions() const = 0;

  /// Raw signature of `point` under function `i` (i < num_functions()).
  virtual uint64_t RawHash(uint32_t i, std::span<const float> point) const = 0;

  /// The similarity measure this family is sensitive to: the model value of
  /// Pr[h(p) = h(q)] (Eqn. 1). Used by τ-ANN theory tests and by searchers
  /// that re-rank by the family's own similarity.
  virtual double CollisionProbability(std::span<const float> p,
                                      std::span<const float> q) const = 0;
};

/// An LSH family over sets of element ids (Jaccard similarity).
class SetLshFamily {
 public:
  virtual ~SetLshFamily() = default;

  virtual uint32_t num_functions() const = 0;

  /// Raw signature of a set (elements need not be sorted or unique).
  virtual uint64_t RawHash(uint32_t i,
                           std::span<const uint32_t> set) const = 0;

  virtual double CollisionProbability(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b) const = 0;
};

}  // namespace lsh
}  // namespace genie
