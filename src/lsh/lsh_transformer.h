#pragma once

/// \file lsh_transformer.h
/// Lowers points into the match-count model under an LSH scheme (Section
/// IV-A1): each hash function i is an attribute, the re-hashed signature
/// r_i(h_i(p)) its value, so the keyword of point p under function i is the
/// ordered pair (i, r_i(h_i(p))). The inverted index then supports tau-ANN
/// by match count.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "core/query.h"
#include "data/points.h"
#include "index/index_builder.h"
#include "index/vocabulary.h"
#include "lsh/lsh_family.h"

namespace genie {
namespace lsh {

struct LshTransformOptions {
  /// Re-hash domain D (Fig. 7): buckets per hash function. The 1/D term of
  /// Theorem 4.1 is the price of the projection. The paper uses 8192 for
  /// RBH signatures on OCR and 67 buckets for E2LSH on SIFT.
  uint32_t rehash_domain = 8192;
  /// Seed of the per-function random projections r_i.
  uint64_t seed = 7;
  /// When false, RawHash values are used directly modulo rehash_domain
  /// (for families whose signature domain is already small, re-hashing "is
  /// not necessary" per Section IV-A2).
  bool rehash = true;
};

/// Transformer for dense-vector families.
class LshTransformer {
 public:
  LshTransformer(std::shared_ptr<const VectorLshFamily> family,
                 const LshTransformOptions& options);

  /// Keywords of one point: one per hash function.
  std::vector<Keyword> Transform(std::span<const float> point) const;

  /// The query-side transformation: one single-keyword item per function.
  Query MakeQuery(std::span<const float> point) const;

  /// Builds the inverted index of a whole dataset.
  Result<InvertedIndex> BuildIndex(
      const data::PointMatrix& points,
      const IndexBuildOptions& build_options = {}) const;

  const DimValueEncoder& encoder() const { return encoder_; }
  const VectorLshFamily& family() const { return *family_; }
  uint32_t rehash_domain() const { return options_.rehash_domain; }

  /// Bundle persistence of the query-side transform state: the options and
  /// the explicit per-function re-hash seeds (the family is serialized
  /// separately by the caller, which knows its concrete type).
  void Serialize(serialize::Writer* writer) const;
  static Result<LshTransformer> Deserialize(
      std::shared_ptr<const VectorLshFamily> family,
      serialize::Reader* reader);

 private:
  uint32_t Bucket(uint32_t function, uint64_t raw) const;

  std::shared_ptr<const VectorLshFamily> family_;
  LshTransformOptions options_;
  DimValueEncoder encoder_;
  std::vector<uint64_t> rehash_seeds_;
};

}  // namespace lsh
}  // namespace genie
