#pragma once

/// \file lsh_searcher.h
/// End-to-end tau-ANN search (Section IV): transform the dataset with an
/// LSH family + re-hashing, build the inverted index on the device, and
/// answer query batches by match count. The top match-count result is the
/// tau-ANN (Theorem 4.2); c/m estimates the similarity (Eqn. 7). For the
/// approximation-ratio evaluation (Fig. 14) a kNN mode re-ranks the top-K
/// match-count candidates by exact distance.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/engine_backend.h"
#include "data/points.h"
#include "lsh/lsh_transformer.h"

namespace genie {
namespace lsh {

struct LshSearchOptions {
  LshTransformOptions transform;
  MatchEngineOptions engine;  // engine.k = number of candidates kept
  IndexBuildOptions build;
  /// Backend selection: when the index exceeds device memory the searcher
  /// transparently shards it and answers through MultiLoadEngine.
  EngineBackendOptions backend;
};

/// One ANN answer with its match count and similarity estimate.
struct AnnMatch {
  ObjectId id = kInvalidObjectId;
  uint32_t match_count = 0;
  double estimated_similarity = 0;  // c / m (Eqn. 7)
};

class LshSearcher {
 public:
  /// Builds the LSH inverted index over `points` (which must outlive the
  /// searcher) and ships it to the device.
  static Result<std::unique_ptr<LshSearcher>> Create(
      const data::PointMatrix* points,
      std::shared_ptr<const VectorLshFamily> family,
      const LshSearchOptions& options);

  /// Reassembles a searcher from persisted state (bundle open): skips the
  /// dataset transform + index build and serves from the preloaded index.
  /// The transformer must be the one the index was built with; `points` is
  /// only consulted for re-ranking and must match the indexed dataset.
  /// `appended_objects` (> 0 only on mutated v2 bundles) is the number of
  /// objects inserted after the base dataset: the index then holds between
  /// points->num_points() and points->num_points() + appended_objects
  /// objects (compaction may not have caught up with the delta).
  static Result<std::unique_ptr<LshSearcher>> Restore(
      const data::PointMatrix* points, LshTransformer transformer,
      InvertedIndex index, const LshSearchOptions& options,
      uint32_t appended_objects = 0);

  /// tau-ANN by match count: per query, candidates in descending count
  /// order (entry 0 is the tau-ANN of Theorem 4.2). Equivalent to
  /// ExecutePrepared(Prepare(queries)).
  Result<std::vector<std::vector<AnnMatch>>> MatchBatch(
      const data::PointMatrix& queries);

  /// Two-phase MatchBatch for the streaming pipeline: Prepare runs the
  /// query transform (LSH hashing + re-hashing) and stages the compiled
  /// batch through the backend; ExecutePrepared answers it. Prepare is
  /// safe to run concurrently with an ExecutePrepared on this searcher —
  /// that concurrency is the pipeline's point.
  struct PreparedBatch {
    std::vector<Query> compiled;
    EngineBackend::StagedChunk staged;
  };
  Result<PreparedBatch> Prepare(const data::PointMatrix& queries);
  Result<std::vector<std::vector<AnnMatch>>> ExecutePrepared(
      PreparedBatch batch);

  /// kNN: takes the engine's top candidates and re-ranks by exact l_p
  /// distance, returning `k_nn` ids per query (ascending distance).
  Result<std::vector<std::vector<ObjectId>>> KnnBatch(
      const data::PointMatrix& queries, uint32_t k_nn, uint32_t p);

  MatchProfile profile() const { return engine_->profile(); }
  const LshTransformer& transformer() const { return transformer_; }
  const InvertedIndex& index() const { return index_; }
  const EngineBackend& backend() const { return *engine_; }
  EngineBackend& backend() { return *engine_; }

 private:
  LshSearcher(const data::PointMatrix* points, LshTransformer transformer,
              InvertedIndex index);

  const data::PointMatrix* points_;
  LshTransformer transformer_;
  InvertedIndex index_;
  std::unique_ptr<EngineBackend> engine_;
};

}  // namespace lsh
}  // namespace genie
