#include "lsh/tau_ann.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace genie {
namespace lsh {

uint32_t HoeffdingNumHashFunctions(double eps, double delta) {
  GENIE_CHECK(eps > 0 && eps < 1 && delta > 0 && delta < 1);
  return static_cast<uint32_t>(
      std::ceil(2.0 * std::log(3.0 / delta) / (eps * eps)));
}

namespace {
/// log C(m, c) via lgamma.
double LogChoose(uint32_t m, uint32_t c) {
  return std::lgamma(m + 1.0) - std::lgamma(c + 1.0) -
         std::lgamma(m - c + 1.0);
}
}  // namespace

double BinomialDeviationProbability(uint32_t m, double s, double eps) {
  GENIE_CHECK(m >= 1 && s >= 0 && s <= 1 && eps > 0);
  // Sum of the binomial pmf for c in [ceil((s-eps)m), floor((s+eps)m)].
  const int64_t lo = std::max<int64_t>(
      0, static_cast<int64_t>(std::ceil((s - eps) * m - 1e-12)));
  const int64_t hi = std::min<int64_t>(
      m, static_cast<int64_t>(std::floor((s + eps) * m + 1e-12)));
  if (lo > hi) return 0.0;
  if (s <= 0.0) return lo == 0 ? 1.0 : 0.0;
  if (s >= 1.0) return static_cast<uint32_t>(hi) == m ? 1.0 : 0.0;
  const double log_s = std::log(s);
  const double log_1ms = std::log1p(-s);
  double total = 0;
  for (int64_t c = lo; c <= hi; ++c) {
    const double log_p = LogChoose(m, static_cast<uint32_t>(c)) +
                         c * log_s + (m - c) * log_1ms;
    total += std::exp(log_p);
  }
  return std::min(total, 1.0);
}

uint32_t MinHashFunctionsForSimilarity(double s, double eps, double delta,
                                       uint32_t max_m) {
  // The probability is not monotone in m (integer boundary effects), so a
  // candidate m must be verified directly; scan with growing stride and
  // refine. A simple linear scan is fine at these magnitudes.
  for (uint32_t m = 1; m <= max_m; ++m) {
    if (BinomialDeviationProbability(m, s, eps) >= 1.0 - delta) return m;
  }
  return 0;
}

uint32_t MinHashFunctions(double eps, double delta, uint32_t grid,
                          uint32_t max_m) {
  uint32_t worst = 1;
  for (uint32_t i = 1; i <= grid; ++i) {
    const double s = static_cast<double>(i) / (grid + 1);
    worst = std::max(worst, MinHashFunctionsForSimilarity(s, eps, delta,
                                                          max_m));
  }
  return worst;
}

double TauBound(double eps, uint32_t rehash_domain) {
  GENIE_CHECK(rehash_domain >= 1);
  return 2.0 * (eps + 1.0 / rehash_domain);
}

}  // namespace lsh
}  // namespace genie
