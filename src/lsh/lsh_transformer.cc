#include "lsh/lsh_transformer.h"

#include "common/rng.h"
#include "lsh/murmur3.h"

namespace genie {
namespace lsh {

LshTransformer::LshTransformer(std::shared_ptr<const VectorLshFamily> family,
                               const LshTransformOptions& options)
    : family_(std::move(family)),
      options_(options),
      encoder_(family_->num_functions(), options.rehash_domain) {
  GENIE_CHECK(options_.rehash_domain >= 1);
  Rng rng(options_.seed);
  rehash_seeds_.resize(family_->num_functions());
  for (auto& s : rehash_seeds_) s = rng.Next64();
}

void LshTransformer::Serialize(serialize::Writer* writer) const {
  writer->U32(options_.rehash_domain);
  writer->U64(options_.seed);
  writer->U8(options_.rehash ? 1 : 0);
  writer->Vec(rehash_seeds_);
}

Result<LshTransformer> LshTransformer::Deserialize(
    std::shared_ptr<const VectorLshFamily> family,
    serialize::Reader* reader) {
  LshTransformOptions options;
  uint8_t rehash = 0;
  GENIE_RETURN_NOT_OK(reader->U32(&options.rehash_domain));
  GENIE_RETURN_NOT_OK(reader->U64(&options.seed));
  GENIE_RETURN_NOT_OK(reader->U8(&rehash));
  options.rehash = rehash != 0;
  if (options.rehash_domain == 0) {
    return Status::InvalidArgument("malformed rehash domain");
  }
  std::vector<uint64_t> seeds;
  GENIE_RETURN_NOT_OK(reader->Vec(&seeds));
  if (seeds.size() != family->num_functions()) {
    return Status::InvalidArgument("re-hash seed count mismatch");
  }
  LshTransformer transformer(std::move(family), options);
  transformer.rehash_seeds_ = std::move(seeds);
  return transformer;
}

uint32_t LshTransformer::Bucket(uint32_t function, uint64_t raw) const {
  if (options_.rehash) {
    return static_cast<uint32_t>(Murmur3_64(raw, rehash_seeds_[function]) %
                                 options_.rehash_domain);
  }
  return static_cast<uint32_t>(raw % options_.rehash_domain);
}

std::vector<Keyword> LshTransformer::Transform(
    std::span<const float> point) const {
  const uint32_t m = family_->num_functions();
  std::vector<Keyword> keywords(m);
  for (uint32_t i = 0; i < m; ++i) {
    keywords[i] =
        encoder_.EncodeUnchecked(i, Bucket(i, family_->RawHash(i, point)));
  }
  return keywords;
}

Query LshTransformer::MakeQuery(std::span<const float> point) const {
  Query query;
  for (Keyword kw : Transform(point)) query.AddItem(kw);
  return query;
}

Result<InvertedIndex> LshTransformer::BuildIndex(
    const data::PointMatrix& points,
    const IndexBuildOptions& build_options) const {
  InvertedIndexBuilder builder(encoder_.vocab_size());
  for (uint32_t i = 0; i < points.num_points(); ++i) {
    const auto keywords = Transform(points.row(i));
    builder.AddObject(i, keywords);
  }
  return std::move(builder).Build(build_options);
}

}  // namespace lsh
}  // namespace genie
