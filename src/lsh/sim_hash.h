#pragma once

/// \file sim_hash.h
/// Sign-random-projection LSH (Charikar): h(p) = sign(a . p) with Gaussian
/// a. Collision probability 1 - theta(p,q)/pi — the angular similarity the
/// paper cites among the kernelized measures GENIE supports.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "lsh/lsh_family.h"

namespace genie {
namespace lsh {

struct SimHashOptions {
  uint32_t num_functions = 237;
  uint32_t dim = 0;  // required
  uint64_t seed = 42;
};

class SimHashFamily : public VectorLshFamily {
 public:
  static Result<std::unique_ptr<SimHashFamily>> Create(
      const SimHashOptions& options);

  uint32_t num_functions() const override { return options_.num_functions; }
  uint64_t RawHash(uint32_t i, std::span<const float> point) const override;

  /// 1 - angle(p, q) / pi.
  double CollisionProbability(std::span<const float> p,
                              std::span<const float> q) const override;

 private:
  explicit SimHashFamily(const SimHashOptions& options);

  SimHashOptions options_;
  std::vector<float> projections_;  // num_functions x dim
};

}  // namespace lsh
}  // namespace genie
