#include "lsh/e2lsh.h"

#include <cmath>

#include "common/logging.h"

namespace genie {
namespace lsh {

namespace {
double LpDistance(std::span<const float> a, std::span<const float> b,
                  uint32_t p) {
  GENIE_CHECK(a.size() == b.size());
  double acc = 0;
  if (p == 1) {
    for (size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
    return acc;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double StdNormalCdf(double x) { return 0.5 * std::erfc(-x / M_SQRT2); }
}  // namespace

E2LshFamily::E2LshFamily(const E2LshOptions& options) : options_(options) {
  Rng rng(options_.seed);
  projections_.resize(static_cast<size_t>(options_.num_functions) *
                      options_.dim);
  offsets_.resize(options_.num_functions);
  for (uint32_t f = 0; f < options_.num_functions; ++f) {
    for (uint32_t d = 0; d < options_.dim; ++d) {
      const double v = options_.p == 1 ? rng.Cauchy() : rng.Gaussian();
      projections_[static_cast<size_t>(f) * options_.dim + d] =
          static_cast<float>(v);
    }
    offsets_[f] = rng.UniformDouble(0.0, options_.bucket_width);
  }
}

Result<std::unique_ptr<E2LshFamily>> E2LshFamily::Create(
    const E2LshOptions& options) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be >= 1");
  if (options.num_functions == 0) {
    return Status::InvalidArgument("num_functions must be >= 1");
  }
  if (options.bucket_width <= 0) {
    return Status::InvalidArgument("bucket_width must be positive");
  }
  if (options.p != 1 && options.p != 2) {
    return Status::InvalidArgument("p must be 1 or 2");
  }
  return std::unique_ptr<E2LshFamily>(new E2LshFamily(options));
}

void E2LshFamily::Serialize(serialize::Writer* writer) const {
  writer->U32(options_.num_functions);
  writer->U32(options_.dim);
  writer->F64(options_.bucket_width);
  writer->U32(options_.p);
  writer->U64(options_.seed);
  writer->Vec(projections_);
  writer->Vec(offsets_);
}

Result<std::unique_ptr<E2LshFamily>> E2LshFamily::Deserialize(
    serialize::Reader* reader) {
  E2LshOptions options;
  GENIE_RETURN_NOT_OK(reader->U32(&options.num_functions));
  GENIE_RETURN_NOT_OK(reader->U32(&options.dim));
  GENIE_RETURN_NOT_OK(reader->F64(&options.bucket_width));
  GENIE_RETURN_NOT_OK(reader->U32(&options.p));
  GENIE_RETURN_NOT_OK(reader->U64(&options.seed));
  if (options.dim == 0 || options.num_functions == 0 ||
      options.bucket_width <= 0 || (options.p != 1 && options.p != 2)) {
    return Status::InvalidArgument("malformed E2LSH parameters");
  }
  std::unique_ptr<E2LshFamily> family(new E2LshFamily());
  family->options_ = options;
  GENIE_RETURN_NOT_OK(reader->Vec(&family->projections_));
  GENIE_RETURN_NOT_OK(reader->Vec(&family->offsets_));
  if (family->projections_.size() !=
          static_cast<size_t>(options.num_functions) * options.dim ||
      family->offsets_.size() != options.num_functions) {
    return Status::InvalidArgument("malformed E2LSH coefficients");
  }
  return family;
}

uint64_t E2LshFamily::RawHash(uint32_t i,
                              std::span<const float> point) const {
  GENIE_DCHECK(i < options_.num_functions);
  GENIE_DCHECK(point.size() == options_.dim);
  const float* a = &projections_[static_cast<size_t>(i) * options_.dim];
  double dot = 0;
  for (uint32_t d = 0; d < options_.dim; ++d) {
    dot += static_cast<double>(a[d]) * point[d];
  }
  const double h = std::floor((dot + offsets_[i]) / options_.bucket_width);
  return static_cast<uint64_t>(static_cast<int64_t>(h));
}

double E2LshFamily::CollisionProbabilityForDistance(double distance) const {
  const double w = options_.bucket_width;
  if (distance <= 0) return 1.0;
  const double r = distance / w;
  if (options_.p == 2) {
    // psi_2(delta) = 1 - 2*Phi(-1/r) - (2r/sqrt(2pi)) (1 - exp(-1/(2 r^2)))
    return 1.0 - 2.0 * StdNormalCdf(-1.0 / r) -
           (2.0 * r / std::sqrt(2.0 * M_PI)) *
               (1.0 - std::exp(-1.0 / (2.0 * r * r)));
  }
  // Cauchy (p = 1): psi_1(delta) = 2 atan(1/r)/pi - (r/pi) ln(1 + 1/r^2)
  return 2.0 * std::atan(1.0 / r) / M_PI -
         (r / M_PI) * std::log(1.0 + 1.0 / (r * r));
}

double E2LshFamily::CollisionProbability(std::span<const float> p,
                                         std::span<const float> q) const {
  return CollisionProbabilityForDistance(LpDistance(p, q, options_.p));
}

}  // namespace lsh
}  // namespace genie
