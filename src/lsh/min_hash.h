#pragma once

/// \file min_hash.h
/// MinHash — the LSH family for the Jaccard kernel over sets, cited by the
/// paper among the kernelized similarity functions GENIE supports
/// (Section II-B1). Collision probability equals the Jaccard similarity.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "lsh/lsh_family.h"

namespace genie {
namespace lsh {

struct MinHashOptions {
  uint32_t num_functions = 237;
  uint64_t seed = 42;
};

class MinHashFamily : public SetLshFamily {
 public:
  static Result<std::unique_ptr<MinHashFamily>> Create(
      const MinHashOptions& options);

  uint32_t num_functions() const override { return options_.num_functions; }

  /// min over elements of a seeded 64-bit mix (one virtual permutation per
  /// function). Empty sets hash to a sentinel.
  uint64_t RawHash(uint32_t i, std::span<const uint32_t> set) const override;

  /// Jaccard similarity |a n b| / |a u b| (inputs treated as sets).
  double CollisionProbability(std::span<const uint32_t> a,
                              std::span<const uint32_t> b) const override;

  /// Bundle persistence: writes the explicit per-function seeds, so a
  /// deserialized family hashes sets identically even if the Rng sampling
  /// ever changes.
  void Serialize(serialize::Writer* writer) const;
  static Result<std::unique_ptr<MinHashFamily>> Deserialize(
      serialize::Reader* reader);

 private:
  explicit MinHashFamily(const MinHashOptions& options);

  MinHashOptions options_;
  std::vector<uint64_t> seeds_;
};

}  // namespace lsh
}  // namespace genie
