#pragma once

/// \file tau_ann.h
/// Tolerance-ANN theory (Section IV-B): sizing the number of LSH functions
/// m so that |MC(Q_q, O_p)/m - sim(p, q)| <= eps with probability >= 1-delta
/// — both the worst-case Hoeffding bound of Theorem 4.1 and the much
/// tighter data-independent binomial-tail simulation of Eqn. 9 that the
/// paper visualizes in Fig. 8 (max m = 237 at s = 0.5 for eps = delta =
/// 0.06, versus 2174 from the Hoeffding bound).

#include <cstdint>

namespace genie {
namespace lsh {

/// Theorem 4.1: m = ceil(2 ln(3/delta) / eps^2).
uint32_t HoeffdingNumHashFunctions(double eps, double delta);

/// P[|c/m - s| <= eps] for c ~ Binomial(m, s) (Eqn. 9).
double BinomialDeviationProbability(uint32_t m, double s, double eps);

/// Smallest m with P[|c/m - s| <= eps] >= 1 - delta for one similarity
/// value s (one point of the Fig. 8 curve). Returns 0 if no m <= max_m
/// suffices.
uint32_t MinHashFunctionsForSimilarity(double s, double eps, double delta,
                                       uint32_t max_m = 100000);

/// The practical rule (Section IV-B2): the worst case of the curve over all
/// similarities, max_s MinHashFunctionsForSimilarity(s) evaluated on a grid
/// of `grid` points in (0, 1). With eps = delta = 0.06 this returns 237.
uint32_t MinHashFunctions(double eps, double delta, uint32_t grid = 99,
                          uint32_t max_m = 100000);

/// The tau of tau-ANN achieved by a correctly sized index: Theorem 4.2
/// bounds |sim(p*, q) - sim(p, q)| by 2*eps (probability >= 1 - 2*delta),
/// plus the 1/D re-hashing error of Theorem 4.1.
double TauBound(double eps, uint32_t rehash_domain);

}  // namespace lsh
}  // namespace genie
