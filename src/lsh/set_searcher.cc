#include "lsh/set_searcher.h"

#include <algorithm>

#include "common/rng.h"
#include "index/index_builder.h"
#include "lsh/min_hash.h"
#include "lsh/murmur3.h"

namespace genie {
namespace lsh {

SetLshSearcher::SetLshSearcher(const SetDataset* sets,
                               std::shared_ptr<const SetLshFamily> family,
                               const SetSearchOptions& options)
    : sets_(sets),
      family_(std::move(family)),
      options_(options),
      encoder_(family_->num_functions(), options.transform.rehash_domain) {
  Rng rng(options_.transform.seed);
  rehash_seeds_.resize(family_->num_functions());
  for (auto& s : rehash_seeds_) s = rng.Next64();
}

Result<std::unique_ptr<SetLshSearcher>> SetLshSearcher::Create(
    const SetDataset* sets, std::shared_ptr<const SetLshFamily> family,
    const SetSearchOptions& options) {
  if (sets == nullptr) return Status::InvalidArgument("sets is null");
  if (family == nullptr) return Status::InvalidArgument("family is null");
  if (options.transform.rehash_domain == 0) {
    return Status::InvalidArgument("rehash_domain must be >= 1");
  }
  std::unique_ptr<SetLshSearcher> searcher(
      new SetLshSearcher(sets, std::move(family), options));
  GENIE_RETURN_NOT_OK(searcher->Init());
  return searcher;
}

Result<std::unique_ptr<SetLshSearcher>> SetLshSearcher::Restore(
    const SetDataset* sets, std::shared_ptr<const SetLshFamily> family,
    const SetSearchOptions& options, std::vector<uint64_t> rehash_seeds,
    InvertedIndex index, uint32_t appended_objects) {
  if (sets == nullptr) return Status::InvalidArgument("sets is null");
  if (family == nullptr) return Status::InvalidArgument("family is null");
  if (options.transform.rehash_domain == 0) {
    return Status::InvalidArgument("rehash_domain must be >= 1");
  }
  if (rehash_seeds.size() != family->num_functions()) {
    return Status::InvalidArgument("re-hash seed count mismatch");
  }
  if (index.num_objects() < sets->size() ||
      index.num_objects() > sets->size() + appended_objects) {
    return Status::InvalidArgument(
        "index object count does not match the sets dataset");
  }
  std::unique_ptr<SetLshSearcher> searcher(
      new SetLshSearcher(sets, std::move(family), options));
  if (index.vocab_size() != searcher->encoder_.vocab_size()) {
    return Status::InvalidArgument(
        "index vocabulary does not match the LSH transform");
  }
  searcher->rehash_seeds_ = std::move(rehash_seeds);
  searcher->index_ = std::move(index);
  GENIE_RETURN_NOT_OK(searcher->SetUpEngine());
  return searcher;
}

std::vector<Keyword> SetLshSearcher::Transform(
    std::span<const uint32_t> set) const {
  const uint32_t m = family_->num_functions();
  std::vector<Keyword> keywords(m);
  for (uint32_t i = 0; i < m; ++i) {
    const uint64_t raw = family_->RawHash(i, set);
    const uint32_t bucket =
        options_.transform.rehash
            ? static_cast<uint32_t>(Murmur3_64(raw, rehash_seeds_[i]) %
                                    options_.transform.rehash_domain)
            : static_cast<uint32_t>(raw % options_.transform.rehash_domain);
    keywords[i] = encoder_.EncodeUnchecked(i, bucket);
  }
  return keywords;
}

Status SetLshSearcher::Init() {
  InvertedIndexBuilder builder(encoder_.vocab_size());
  for (size_t i = 0; i < sets_->size(); ++i) {
    const auto keywords = Transform((*sets_)[i]);
    builder.AddObject(static_cast<ObjectId>(i), keywords);
  }
  GENIE_ASSIGN_OR_RETURN(index_, std::move(builder).Build(options_.build));
  return SetUpEngine();
}

Status SetLshSearcher::SetUpEngine() {
  MatchEngineOptions engine_options = options_.engine;
  engine_options.max_count = family_->num_functions();
  EngineBackendOptions backend_options = options_.backend;
  backend_options.shard_build = options_.build;
  GENIE_ASSIGN_OR_RETURN(
      engine_, EngineBackend::Create(&index_, engine_options,
                                     backend_options));
  return Status::OK();
}

Result<std::vector<std::vector<AnnMatch>>> SetLshSearcher::MatchBatch(
    std::span<const std::vector<uint32_t>> queries) {
  GENIE_ASSIGN_OR_RETURN(PreparedBatch batch, Prepare(queries));
  return ExecutePrepared(std::move(batch));
}

Result<SetLshSearcher::PreparedBatch> SetLshSearcher::Prepare(
    std::span<const std::vector<uint32_t>> queries) {
  PreparedBatch batch;
  batch.compiled.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    for (Keyword kw : Transform(queries[i])) batch.compiled[i].AddItem(kw);
  }
  GENIE_ASSIGN_OR_RETURN(batch.staged, engine_->Prepare(batch.compiled));
  return batch;
}

Result<std::vector<std::vector<AnnMatch>>> SetLshSearcher::ExecutePrepared(
    PreparedBatch batch) {
  GENIE_ASSIGN_OR_RETURN(std::vector<QueryResult> raw,
                         engine_->Execute(std::move(batch.staged)));
  const double m = family_->num_functions();
  std::vector<std::vector<AnnMatch>> results(raw.size());
  for (size_t q = 0; q < raw.size(); ++q) {
    results[q].reserve(raw[q].entries.size());
    for (const TopKEntry& e : raw[q].entries) {
      results[q].push_back(AnnMatch{e.id, e.count, e.count / m});
    }
  }
  return results;
}

Result<std::vector<std::vector<ObjectId>>> SetLshSearcher::KnnBatch(
    std::span<const std::vector<uint32_t>> queries, uint32_t k_nn) {
  GENIE_ASSIGN_OR_RETURN(std::vector<std::vector<AnnMatch>> matches,
                         MatchBatch(queries));
  std::vector<std::vector<ObjectId>> results(matches.size());
  for (size_t q = 0; q < matches.size(); ++q) {
    std::vector<std::pair<double, ObjectId>> ranked;
    ranked.reserve(matches[q].size());
    for (const AnnMatch& m : matches[q]) {
      // Exact Jaccard re-rank (negated: sort ascending).
      ranked.emplace_back(
          -family_->CollisionProbability((*sets_)[m.id], queries[q]), m.id);
    }
    std::sort(ranked.begin(), ranked.end());
    results[q].reserve(std::min<size_t>(k_nn, ranked.size()));
    for (size_t i = 0; i < ranked.size() && i < k_nn; ++i) {
      results[q].push_back(ranked[i].second);
    }
  }
  return results;
}

}  // namespace lsh
}  // namespace genie
