#pragma once

/// \file random_binning.h
/// Random Binning Hashing (Rahimi & Recht), the family the paper's OCR case
/// study uses for the Laplacian kernel k(p,q) = exp(-||p-q||_1 / sigma)
/// (Section IV-A3). For each function, every dimension gets a grid pitch g
/// sampled from p(g) = g * k''(g) — Gamma(shape 2, scale sigma) for the
/// Laplacian kernel — and a shift u ~ U[0, g); the signature is the vector
/// of bin indices floor((x_d - u_d) / g_d), whose expected collision
/// probability equals the kernel value. The (huge) signature vector is
/// digested to 64 bits, matching the paper's observation that RBH demands
/// re-hashing to be usable in an inverted index.
///
/// Deviation from the paper's Eqn. 2: the paper writes a single pitch g per
/// function; we sample an independent pitch per dimension as in the
/// original RBH construction, which is what makes E[collision] factor into
/// the product of per-dimension Laplacian kernels exactly.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "lsh/lsh_family.h"

namespace genie {
namespace lsh {

struct RandomBinningOptions {
  uint32_t num_functions = 237;
  uint32_t dim = 0;      // required
  double kernel_width = 1.0;  // sigma of the Laplacian kernel
  uint64_t seed = 42;
};

class RandomBinningFamily : public VectorLshFamily {
 public:
  static Result<std::unique_ptr<RandomBinningFamily>> Create(
      const RandomBinningOptions& options);

  uint32_t num_functions() const override { return options_.num_functions; }
  uint64_t RawHash(uint32_t i, std::span<const float> point) const override;

  /// The Laplacian kernel exp(-||p-q||_1 / sigma).
  double CollisionProbability(std::span<const float> p,
                              std::span<const float> q) const override;

  const RandomBinningOptions& options() const { return options_; }

  /// Bundle persistence: the explicit grid (pitches + shifts) is written
  /// alongside the options, so a deserialized family hashes queries
  /// identically even if the Rng sampling ever changes.
  void Serialize(serialize::Writer* writer) const;
  static Result<std::unique_ptr<RandomBinningFamily>> Deserialize(
      serialize::Reader* reader);

 private:
  explicit RandomBinningFamily(const RandomBinningOptions& options);
  RandomBinningFamily() = default;

  RandomBinningOptions options_;
  std::vector<double> pitches_;  // num_functions x dim
  std::vector<double> shifts_;   // num_functions x dim
};

/// The paper's heuristic for sigma (after Jaakkola et al.): the mean
/// pairwise L1 distance over a sample of the data.
double EstimateLaplacianKernelWidth(
    std::span<const float> data, uint32_t dim, uint32_t num_points,
    uint32_t sample_pairs, uint64_t seed);

}  // namespace lsh
}  // namespace genie
