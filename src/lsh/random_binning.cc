#include "lsh/random_binning.h"

#include <cmath>

#include "common/logging.h"
#include "lsh/murmur3.h"

namespace genie {
namespace lsh {

RandomBinningFamily::RandomBinningFamily(const RandomBinningOptions& options)
    : options_(options) {
  Rng rng(options_.seed);
  const size_t total =
      static_cast<size_t>(options_.num_functions) * options_.dim;
  pitches_.resize(total);
  shifts_.resize(total);
  for (size_t i = 0; i < total; ++i) {
    // p(g) = g * k''(g) = g exp(-g/sigma) / sigma^2 = Gamma(2, sigma).
    const double g = rng.Gamma(2.0, options_.kernel_width);
    pitches_[i] = g;
    shifts_[i] = rng.UniformDouble(0.0, g);
  }
}

Result<std::unique_ptr<RandomBinningFamily>> RandomBinningFamily::Create(
    const RandomBinningOptions& options) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be >= 1");
  if (options.num_functions == 0) {
    return Status::InvalidArgument("num_functions must be >= 1");
  }
  if (options.kernel_width <= 0) {
    return Status::InvalidArgument("kernel_width must be positive");
  }
  return std::unique_ptr<RandomBinningFamily>(
      new RandomBinningFamily(options));
}

uint64_t RandomBinningFamily::RawHash(uint32_t i,
                                      std::span<const float> point) const {
  GENIE_DCHECK(i < options_.num_functions);
  GENIE_DCHECK(point.size() == options_.dim);
  const size_t base = static_cast<size_t>(i) * options_.dim;
  // Digest the d-dimensional bin-index vector incrementally: the "thousands
  // of bits" signature (Section IV-A2) never materializes.
  uint64_t digest = 0x9E3779B97F4A7C15ULL ^ i;
  for (uint32_t d = 0; d < options_.dim; ++d) {
    const double bin =
        std::floor((point[d] - shifts_[base + d]) / pitches_[base + d]);
    const uint64_t b = static_cast<uint64_t>(static_cast<int64_t>(bin));
    digest = Murmur3_64(b ^ digest, digest);
  }
  return digest;
}

void RandomBinningFamily::Serialize(serialize::Writer* writer) const {
  writer->U32(options_.num_functions);
  writer->U32(options_.dim);
  writer->F64(options_.kernel_width);
  writer->U64(options_.seed);
  // The sampled grid is persisted explicitly so hashing is stable across
  // versions even if the Rng's Gamma sampling changes.
  writer->Vec(pitches_);
  writer->Vec(shifts_);
}

Result<std::unique_ptr<RandomBinningFamily>> RandomBinningFamily::Deserialize(
    serialize::Reader* reader) {
  RandomBinningOptions options;
  GENIE_RETURN_NOT_OK(reader->U32(&options.num_functions));
  GENIE_RETURN_NOT_OK(reader->U32(&options.dim));
  GENIE_RETURN_NOT_OK(reader->F64(&options.kernel_width));
  GENIE_RETURN_NOT_OK(reader->U64(&options.seed));
  if (options.num_functions == 0 || options.dim == 0) {
    return Status::InvalidArgument("corrupt random-binning family header");
  }
  if (!(options.kernel_width > 0)) {
    return Status::InvalidArgument(
        "corrupt random-binning family: kernel_width must be positive");
  }
  std::unique_ptr<RandomBinningFamily> family(new RandomBinningFamily());
  family->options_ = options;
  GENIE_RETURN_NOT_OK(reader->Vec(&family->pitches_));
  GENIE_RETURN_NOT_OK(reader->Vec(&family->shifts_));
  const size_t total =
      static_cast<size_t>(options.num_functions) * options.dim;
  if (family->pitches_.size() != total || family->shifts_.size() != total) {
    return Status::InvalidArgument(
        "corrupt random-binning family: grid size mismatch");
  }
  for (size_t i = 0; i < total; ++i) {
    if (!(family->pitches_[i] > 0)) {
      return Status::InvalidArgument(
          "corrupt random-binning family: non-positive pitch");
    }
  }
  return family;
}

double RandomBinningFamily::CollisionProbability(
    std::span<const float> p, std::span<const float> q) const {
  GENIE_CHECK(p.size() == q.size());
  double l1 = 0;
  for (size_t i = 0; i < p.size(); ++i) l1 += std::abs(p[i] - q[i]);
  return std::exp(-l1 / options_.kernel_width);
}

double EstimateLaplacianKernelWidth(std::span<const float> data, uint32_t dim,
                                    uint32_t num_points,
                                    uint32_t sample_pairs, uint64_t seed) {
  GENIE_CHECK(num_points >= 2 && dim >= 1);
  Rng rng(seed);
  double total = 0;
  for (uint32_t s = 0; s < sample_pairs; ++s) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformU64(num_points));
    uint32_t b = static_cast<uint32_t>(rng.UniformU64(num_points - 1));
    if (b >= a) ++b;
    double l1 = 0;
    for (uint32_t d = 0; d < dim; ++d) {
      l1 += std::abs(data[static_cast<size_t>(a) * dim + d] -
                     data[static_cast<size_t>(b) * dim + d]);
    }
    total += l1;
  }
  return total / sample_pairs;
}

}  // namespace lsh
}  // namespace genie
