#include "index/shard.h"

#include <algorithm>

#include "index/index_builder.h"

namespace genie {

Result<ShardedIndex> ShardByObjectRange(
    const InvertedIndex& index, uint32_t num_parts,
    const IndexBuildOptions& build_options) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  const uint32_t n = index.num_objects();
  num_parts = std::max(1u, std::min(num_parts, n));
  const uint32_t per = (n + num_parts - 1) / num_parts;

  std::vector<InvertedIndexBuilder> builders;
  builders.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    builders.emplace_back(index.vocab_size());
  }
  for (Keyword kw = 0; kw < index.vocab_size(); ++kw) {
    auto [first, count] = index.KeywordLists(kw);
    for (uint32_t l = 0; l < count; ++l) {
      const auto ref = index.List(first + l);
      for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
        const ObjectId oid = index.postings()[pos];
        builders[oid / per].Add(oid % per, kw);
      }
    }
  }

  ShardedIndex sharded;
  sharded.shards.reserve(num_parts);
  sharded.offsets.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    GENIE_ASSIGN_OR_RETURN(InvertedIndex shard,
                           std::move(builders[p]).Build(build_options));
    sharded.shards.push_back(std::move(shard));
    sharded.offsets.push_back(static_cast<ObjectId>(p) * per);
  }
  return sharded;
}

}  // namespace genie
