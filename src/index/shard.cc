#include "index/shard.h"

#include <algorithm>

#include "index/index_builder.h"
#include "plan/index_stats.h"

namespace genie {

Result<ShardedIndex> ShardByObjectRange(
    const InvertedIndex& index, uint32_t num_parts,
    const IndexBuildOptions& build_options) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  const uint32_t n = index.num_objects();
  num_parts = std::max(1u, std::min(num_parts, n));
  const uint32_t per = (n + num_parts - 1) / num_parts;

  std::vector<InvertedIndexBuilder> builders;
  builders.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    builders.emplace_back(index.vocab_size());
  }
  for (Keyword kw = 0; kw < index.vocab_size(); ++kw) {
    auto [first, count] = index.KeywordLists(kw);
    for (uint32_t l = 0; l < count; ++l) {
      const auto ref = index.List(first + l);
      for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
        const ObjectId oid = index.postings()[pos];
        builders[oid / per].Add(oid % per, kw);
      }
    }
  }

  ShardedIndex sharded;
  sharded.shards.reserve(num_parts);
  sharded.offsets.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    GENIE_ASSIGN_OR_RETURN(InvertedIndex shard,
                           std::move(builders[p]).Build(build_options));
    sharded.shards.push_back(std::move(shard));
    sharded.offsets.push_back(static_cast<ObjectId>(p) * per);
  }
  return sharded;
}

Result<ShardedIndex> ShardByBoundaries(
    const InvertedIndex& index, std::span<const ObjectId> boundaries,
    const IndexBuildOptions& build_options) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument("need at least 2 shard boundaries");
  }
  if (boundaries.front() != 0 || boundaries.back() != index.num_objects()) {
    return Status::InvalidArgument(
        "shard boundaries must cover [0, num_objects)");
  }
  const uint32_t num_parts = static_cast<uint32_t>(boundaries.size() - 1);
  for (uint32_t p = 0; p < num_parts; ++p) {
    if (boundaries[p] >= boundaries[p + 1]) {
      return Status::InvalidArgument(
          "shard boundaries must be strictly ascending");
    }
  }

  std::vector<InvertedIndexBuilder> builders;
  builders.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    builders.emplace_back(index.vocab_size());
  }
  for (Keyword kw = 0; kw < index.vocab_size(); ++kw) {
    auto [first, count] = index.KeywordLists(kw);
    for (uint32_t l = 0; l < count; ++l) {
      const auto ref = index.List(first + l);
      for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
        const ObjectId oid = index.postings()[pos];
        // First boundary strictly greater than oid bounds oid's shard.
        const uint32_t p = static_cast<uint32_t>(
            std::upper_bound(boundaries.begin() + 1, boundaries.end(), oid) -
            (boundaries.begin() + 1));
        builders[p].Add(oid - boundaries[p], kw);
      }
    }
  }

  ShardedIndex sharded;
  sharded.shards.reserve(num_parts);
  sharded.offsets.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    GENIE_ASSIGN_OR_RETURN(InvertedIndex shard,
                           std::move(builders[p]).Build(build_options));
    sharded.shards.push_back(std::move(shard));
    sharded.offsets.push_back(boundaries[p]);
  }
  return sharded;
}

Result<ShardedIndex> ShardByPostingsVolume(
    const InvertedIndex& index, uint32_t num_parts,
    const IndexBuildOptions& build_options) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  // Exact per-object volumes (bucket width 1), so the cut points are as
  // balanced as contiguous ranges allow.
  const plan::IndexStats stats =
      plan::ComputeIndexStats(index, 0, std::max(1u, index.num_objects()));
  const std::vector<ObjectId> boundaries =
      plan::BalancedBoundaries(stats, num_parts);
  return ShardByBoundaries(index, boundaries, build_options);
}

}  // namespace genie
