#pragma once

/// \file types.h
/// Fundamental identifier types shared across the index and engines.

#include <cstdint>

namespace genie {

/// Dense id of a data object (paper: O_i). 32 bits match the paper's count
/// table layout and the GPU-side postings encoding.
using ObjectId = uint32_t;

/// Dense id of an inverted-index keyword, i.e. an encoded (dimension, value)
/// pair (Example 2.1) or a vocabulary token (Section V).
using Keyword = uint32_t;

inline constexpr ObjectId kInvalidObjectId = ~ObjectId{0};
inline constexpr Keyword kInvalidKeyword = ~Keyword{0};

}  // namespace genie
