#include "index/index_builder.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/logging.h"

namespace genie {

InvertedIndexBuilder::InvertedIndexBuilder(uint32_t vocab_size)
    : vocab_size_(vocab_size) {
  GENIE_CHECK(vocab_size >= 1);
}

void InvertedIndexBuilder::Add(ObjectId object, Keyword keyword) {
  GENIE_CHECK(keyword < vocab_size_) << "keyword outside vocabulary";
  entries_.push_back(Entry{keyword, object});
  max_object_ = any_ ? std::max(max_object_, object) : object;
  any_ = true;
}

void InvertedIndexBuilder::AddObject(ObjectId object,
                                     std::span<const Keyword> keywords) {
  for (Keyword kw : keywords) Add(object, kw);
}

void InvertedIndexBuilder::EnsureNumObjects(uint32_t num_objects) {
  if (num_objects == 0) return;
  max_object_ = any_ ? std::max(max_object_, num_objects - 1)
                     : num_objects - 1;
  any_ = true;
}

Result<InvertedIndex> InvertedIndexBuilder::Build(
    const IndexBuildOptions& options) && {
  InvertedIndex index;
  index.num_objects_ = any_ ? max_object_ + 1 : 0;

  // Counting sort by keyword keeps per-list object order stable in object
  // insertion order (postings of one list stay contiguous and sorted if the
  // caller added objects in id order).
  std::vector<uint32_t> freq(vocab_size_ + 1, 0);
  for (const Entry& e : entries_) ++freq[e.keyword + 1];
  std::vector<uint32_t> keyword_begin(vocab_size_ + 1, 0);
  for (uint32_t kw = 0; kw < vocab_size_; ++kw) {
    keyword_begin[kw + 1] = keyword_begin[kw] + freq[kw + 1];
  }
  index.postings_.resize(entries_.size());
  {
    std::vector<uint32_t> cursor(keyword_begin.begin(),
                                 keyword_begin.end() - 1);
    for (const Entry& e : entries_) {
      index.postings_[cursor[e.keyword]++] = e.object;
    }
  }
  entries_.clear();
  entries_.shrink_to_fit();

  // Carve the keyword ranges into (sub)lists. Without load balancing every
  // keyword becomes exactly one list; with it, long lists split into chunks
  // of at most max_list_length (Fig. 4).
  const uint32_t max_len = options.max_list_length;
  index.keyword_first_list_.resize(vocab_size_ + 1);
  index.list_offsets_.clear();
  index.list_offsets_.push_back(0);
  index.max_list_length_ = 0;
  for (uint32_t kw = 0; kw < vocab_size_; ++kw) {
    index.keyword_first_list_[kw] =
        static_cast<uint32_t>(index.list_offsets_.size() - 1);
    const uint32_t begin = keyword_begin[kw];
    const uint32_t end = keyword_begin[kw + 1];
    const uint32_t len = end - begin;
    if (len == 0) continue;
    const uint32_t chunk = (max_len > 0) ? max_len : len;
    for (uint32_t pos = begin; pos < end; pos += chunk) {
      const uint32_t sub_end = std::min(pos + chunk, end);
      index.list_offsets_.push_back(sub_end);
      index.max_list_length_ = std::max(index.max_list_length_, sub_end - pos);
    }
  }
  index.keyword_first_list_[vocab_size_] =
      static_cast<uint32_t>(index.list_offsets_.size() - 1);
  return index;
}

}  // namespace genie
