#pragma once

/// \file index_builder.h
/// Builds InvertedIndex instances from (object, keyword) postings, with
/// optional load-balance splitting of long lists (Section III-B1).

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "index/inverted_index.h"
#include "index/types.h"

namespace genie {

struct IndexBuildOptions {
  /// When > 0, postings lists longer than this are split into sublists of at
  /// most this length and the position map becomes one-to-many (the paper
  /// uses 4K). 0 disables load balancing.
  uint32_t max_list_length = 0;
};

class InvertedIndexBuilder {
 public:
  /// `vocab_size` fixes the keyword universe; keywords must be < vocab_size.
  explicit InvertedIndexBuilder(uint32_t vocab_size);

  /// Appends one posting. Duplicate (object, keyword) pairs are kept: the
  /// match-count model counts every matched element of an object (e.g. a
  /// repeated ordered n-gram id never repeats, but a relational object never
  /// adds the same keyword twice either; dedup is the caller's call).
  void Add(ObjectId object, Keyword keyword);

  /// Appends all keywords of one object.
  void AddObject(ObjectId object, std::span<const Keyword> keywords);

  /// Widens the built index's object-id space to at least `num_objects`
  /// without adding postings (objects beyond the last posting simply match
  /// nothing). Compaction uses this to keep tombstoned tail ids addressable.
  void EnsureNumObjects(uint32_t num_objects);

  size_t num_postings() const { return entries_.size(); }

  /// Assembles the CSR index. The builder can be reused afterwards only via
  /// a fresh instance.
  Result<InvertedIndex> Build(const IndexBuildOptions& options = {}) &&;

 private:
  struct Entry {
    Keyword keyword;
    ObjectId object;
  };

  uint32_t vocab_size_;
  ObjectId max_object_ = 0;
  bool any_ = false;
  std::vector<Entry> entries_;
};

}  // namespace genie
