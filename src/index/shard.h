#pragma once

/// \file shard.h
/// Object-range sharding of an inverted index for multiple loading
/// (Section III-D): the object universe is split into contiguous id ranges
/// and a local-id index is rebuilt per range. Shard p's local object o
/// corresponds to global object offsets[p] + o, which is exactly the
/// IndexPart contract of MultiLoadEngine.

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "index/index_builder.h"
#include "index/inverted_index.h"
#include "index/types.h"

namespace genie {

struct ShardedIndex {
  std::vector<InvertedIndex> shards;
  /// Global object id of shard p's local id 0 (same length as `shards`).
  std::vector<ObjectId> offsets;
};

/// Splits `index` into at most `num_parts` contiguous object ranges of equal
/// width. Duplicate postings and load-balance sublists are preserved
/// (postings are re-added verbatim; pass `build_options` to re-split long
/// lists per shard). `num_parts` is clamped to the number of objects.
Result<ShardedIndex> ShardByObjectRange(
    const InvertedIndex& index, uint32_t num_parts,
    const IndexBuildOptions& build_options = {});

/// Splits `index` at explicit object-id boundaries: shard p covers global
/// ids [boundaries[p], boundaries[p+1]). `boundaries` must be strictly
/// ascending, start at 0 and end at num_objects (so every object belongs to
/// exactly one non-empty shard) — the query planner emits such boundary
/// vectors balanced by postings volume.
Result<ShardedIndex> ShardByBoundaries(
    const InvertedIndex& index, std::span<const ObjectId> boundaries,
    const IndexBuildOptions& build_options = {});

/// Splits `index` into at most `num_parts` contiguous object ranges of
/// near-equal postings volume (the skew-proof counterpart of
/// ShardByObjectRange: a range holding the hot objects comes out narrower
/// instead of overloading its part). `num_parts` is clamped to the number
/// of objects.
Result<ShardedIndex> ShardByPostingsVolume(
    const InvertedIndex& index, uint32_t num_parts,
    const IndexBuildOptions& build_options = {});

}  // namespace genie
