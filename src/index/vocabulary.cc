#include "index/vocabulary.h"

#include <utility>

#include "common/logging.h"

namespace genie {

DimValueEncoder::DimValueEncoder(std::vector<uint32_t> buckets_per_dim)
    : buckets_(std::move(buckets_per_dim)) {
  GENIE_CHECK(!buckets_.empty());
  offsets_.resize(buckets_.size() + 1);
  offsets_[0] = 0;
  for (size_t d = 0; d < buckets_.size(); ++d) {
    GENIE_CHECK(buckets_[d] >= 1);
    offsets_[d + 1] = offsets_[d] + buckets_[d];
  }
}

DimValueEncoder::DimValueEncoder(uint32_t dims, uint32_t buckets)
    : DimValueEncoder(std::vector<uint32_t>(dims, buckets)) {}

Result<Keyword> DimValueEncoder::Encode(uint32_t dim, uint32_t value) const {
  if (dim >= num_dims()) {
    return Status::OutOfRange("dimension out of range");
  }
  if (value >= buckets_[dim]) {
    return Status::OutOfRange("value out of range for dimension");
  }
  return offsets_[dim] + value;
}

std::pair<uint32_t, uint32_t> DimValueEncoder::Decode(Keyword kw) const {
  GENIE_CHECK(kw < vocab_size());
  // Dimensions are few (attributes / hash functions); linear scan suffices.
  uint32_t dim = 0;
  while (offsets_[dim + 1] <= kw) ++dim;
  return {dim, kw - offsets_[dim]};
}

Keyword StringVocabulary::GetOrAdd(std::string_view token) {
  auto it = map_.find(std::string(token));
  if (it != map_.end()) return it->second;
  Keyword kw = static_cast<Keyword>(map_.size());
  map_.emplace(std::string(token), kw);
  return kw;
}

Keyword StringVocabulary::Find(std::string_view token) const {
  auto it = map_.find(std::string(token));
  return it == map_.end() ? kInvalidKeyword : it->second;
}

void StringVocabulary::Serialize(serialize::Writer* writer) const {
  std::vector<const std::string*> tokens(map_.size());
  for (const auto& [token, kw] : map_) tokens[kw] = &token;
  writer->U64(tokens.size());
  for (const std::string* token : tokens) writer->String(*token);
}

Result<StringVocabulary> StringVocabulary::Deserialize(
    serialize::Reader* reader) {
  uint64_t count = 0;
  GENIE_RETURN_NOT_OK(reader->U64(&count));
  // Every serialized token costs at least its u64 length prefix.
  if (count > reader->remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument("vocabulary count exceeds blob");
  }
  StringVocabulary vocab;
  std::string token;
  for (uint64_t kw = 0; kw < count; ++kw) {
    GENIE_RETURN_NOT_OK(reader->String(&token));
    if (vocab.GetOrAdd(token) != kw) {
      return Status::InvalidArgument("duplicate vocabulary token");
    }
  }
  return vocab;
}

}  // namespace genie
