#pragma once

/// \file varint.h
/// LEB128 variable-length integers and delta coding for postings lists.
/// Postings within a (sub)list are ascending object ids (the builder emits
/// them in insertion order, which is id order for all GENIE pipelines), so
/// gaps are small and varint-delta typically shrinks the List Array 2-4x —
/// the standard inverted-index compression the paper's related work applies
/// on the GPU (Ao et al. [34]).

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace genie {
namespace varint {

/// Appends v as LEB128 (1-5 bytes for uint32).
void Encode(uint32_t v, std::vector<uint8_t>* out);

/// Decodes one LEB128 value starting at `pos`; advances pos. Errors on
/// truncated or overlong input.
Result<uint32_t> Decode(std::span<const uint8_t> buf, size_t* pos);

/// Encodes an ascending sequence as first value + deltas. Fails on
/// descending input (the caller's contract).
Status EncodeDeltaAscending(std::span<const uint32_t> values,
                            std::vector<uint8_t>* out);

/// Inverse of EncodeDeltaAscending: decodes exactly `count` values
/// starting at `pos`, advancing pos.
Status DecodeDeltaAscending(std::span<const uint8_t> buf, size_t* pos,
                            size_t count, std::vector<uint32_t>* out);

}  // namespace varint
}  // namespace genie
