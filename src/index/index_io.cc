#include "index/index_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/file_util.h"
#include "index/varint.h"
#include "lsh/murmur3.h"

namespace genie {

namespace {

constexpr char kMagicV1[8] = {'G', 'N', 'I', 'E', 'I', 'D', 'X', '1'};
constexpr char kMagicV2[8] = {'G', 'N', 'I', 'E', 'I', 'D', 'X', '2'};

using file_util::FileBytes;
using file_util::FilePtr;

/// A sink is `bool operator()(const void* data, size_t len)` returning
/// false on a failed write; the one writer implementation below streams
/// into a FILE (SaveIndex — no full-image buffering) or a std::string
/// (SaveIndexToBuffer, for embedding in bundles).
template <typename Sink, typename T>
bool SinkPod(Sink&& sink, const T& v) {
  return sink(&v, sizeof(T));
}
template <typename Sink, typename T>
bool SinkArray(Sink&& sink, const std::vector<T>& v) {
  return v.empty() || sink(v.data(), v.size() * sizeof(T));
}

/// Reads sizeof(T) bytes after bounding against the section end, so header
/// fields of an embedded stream can never read into the enclosing
/// container's bytes.
template <typename T>
Status ReadPodBounded(std::FILE* f, T* v, uint64_t end_offset,
                      const std::string& path) {
  const long pos = std::ftell(f);
  if (pos < 0) return Status::Internal("cannot determine read position: " + path);
  if (static_cast<uint64_t>(pos) + sizeof(T) > end_offset) {
    return Status::InvalidArgument("truncated index data: " + path);
  }
  if (std::fread(v, sizeof(T), 1, f) != 1) {
    return Status::InvalidArgument("truncated index data: " + path);
  }
  return Status::OK();
}

/// Reads `count` elements after bounding `count` against the bytes left in
/// the section. Counts come straight from the (possibly truncated or
/// hostile) header; resizing first would let a forged multi-terabyte count
/// drive the vector into a huge allocation / std::bad_alloc before any
/// checksum runs.
template <typename T>
Status ReadBoundedArray(std::FILE* f, std::vector<T>* v, uint64_t count,
                        uint64_t end_offset, const std::string& path) {
  const long pos = std::ftell(f);
  if (pos < 0 || static_cast<uint64_t>(pos) > end_offset) {
    return Status::Internal("cannot determine read position: " + path);
  }
  const uint64_t remaining = end_offset - static_cast<uint64_t>(pos);
  if (count > remaining / sizeof(T)) {
    return Status::InvalidArgument("header count exceeds file size: " + path);
  }
  v->resize(count);
  if (count != 0 && std::fread(v->data(), sizeof(T), count, f) != count) {
    return Status::InvalidArgument("truncated index data: " + path);
  }
  return Status::OK();
}

template <typename T>
uint64_t ArrayDigest(const std::vector<T>& v, uint64_t seed) {
  return lsh::Murmur3_64(v.data(), v.size() * sizeof(T), seed);
}

uint64_t IndexChecksum(const std::vector<ObjectId>& postings,
                       const std::vector<uint32_t>& list_offsets,
                       const std::vector<uint32_t>& keyword_first_list) {
  uint64_t digest = ArrayDigest(postings, 0x47454E4945ULL);
  digest = ArrayDigest(list_offsets, digest);
  return ArrayDigest(keyword_first_list, digest);
}

struct Header {
  uint32_t num_objects = 0;
  uint32_t max_list_length = 0;
  uint64_t postings_count = 0;
  uint64_t offsets_count = 0;
  uint64_t keyword_count = 0;
};

template <typename Sink>
bool SinkHeader(Sink&& sink, const char* magic, const Header& h) {
  return sink(magic, 8) && SinkPod(sink, h.num_objects) &&
         SinkPod(sink, h.max_list_length) && SinkPod(sink, h.postings_count) &&
         SinkPod(sink, h.offsets_count) && SinkPod(sink, h.keyword_count);
}

/// The one index writer: streams the exact SaveIndex / SaveIndexCompressed
/// byte sequence into `sink`. A false return from the sink maps to IOError
/// (`context` names the destination in the message).
template <typename Sink>
Status WriteIndexTo(Sink&& sink, const Header& h,
                    const std::vector<ObjectId>& postings,
                    const std::vector<uint32_t>& list_offsets,
                    const std::vector<uint32_t>& keyword_first_list,
                    bool compressed, const std::string& context) {
  bool ok;
  if (compressed) {
    // Compress per (sub)list so decoding can re-delimit via list_offsets;
    // built before the first sink write, so an incompressible index (or
    // one added out of id order) fails without touching the destination.
    std::vector<uint8_t> blob;
    blob.reserve(postings.size());  // postings rarely expand past 1B/id
    for (size_t l = 0; l + 1 < list_offsets.size(); ++l) {
      GENIE_RETURN_NOT_OK(varint::EncodeDeltaAscending(
          std::span<const uint32_t>(postings).subspan(
              list_offsets[l], list_offsets[l + 1] - list_offsets[l]),
          &blob));
    }
    ok = SinkHeader(sink, kMagicV2, h) &&
         SinkPod(sink, static_cast<uint64_t>(blob.size())) &&
         SinkArray(sink, blob);
  } else {
    ok = SinkHeader(sink, kMagicV1, h) && SinkArray(sink, postings);
  }
  ok = ok && SinkArray(sink, list_offsets) &&
       SinkArray(sink, keyword_first_list) &&
       SinkPod(sink,
               IndexChecksum(postings, list_offsets, keyword_first_list));
  if (!ok) return Status::IOError("short write to " + context);
  return Status::OK();
}

/// File-backed save shared by SaveIndex / SaveIndexCompressed: streams
/// straight from the index's own buffers (no full-image copy) and verifies
/// stream health through the final flush, so a full disk reports IOError
/// instead of leaving a truncated-but-"OK" file. The file is opened
/// lazily on the first write, so a failed compression never creates it.
Status SaveIndexToFileImpl(const Header& h,
                           const std::vector<ObjectId>& postings,
                           const std::vector<uint32_t>& list_offsets,
                           const std::vector<uint32_t>& keyword_first_list,
                           bool compressed, const std::string& path) {
  FilePtr f;
  bool open_failed = false;
  auto sink = [&](const void* data, size_t len) {
    if (f == nullptr) {
      f.reset(std::fopen(path.c_str(), "wb"));
      if (f == nullptr) {
        open_failed = true;
        return false;
      }
    }
    return std::fwrite(data, 1, len, f.get()) == len;
  };
  const Status written = WriteIndexTo(sink, h, postings, list_offsets,
                                      keyword_first_list, compressed, path);
  if (!written.ok()) {
    return open_failed ? Status::IOError("cannot open for writing: " + path)
                       : written;
  }
  if (std::fflush(f.get()) != 0 || std::ferror(f.get())) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status ValidateStructure(const InvertedIndex& index, const std::string& path,
                         const std::vector<uint32_t>& list_offsets,
                         const std::vector<uint32_t>& keyword_first_list,
                         size_t postings_count) {
  if (list_offsets.front() != 0 || list_offsets.back() != postings_count) {
    return Status::InvalidArgument("inconsistent list offsets: " + path);
  }
  for (size_t i = 1; i < list_offsets.size(); ++i) {
    if (list_offsets[i] < list_offsets[i - 1]) {
      return Status::InvalidArgument("non-monotone list offsets: " + path);
    }
  }
  if (keyword_first_list.back() != index.num_lists()) {
    return Status::InvalidArgument("inconsistent keyword map: " + path);
  }
  return Status::OK();
}

Header HeaderOf(uint32_t num_objects, uint32_t max_list_length,
                size_t postings_count, size_t offsets_count,
                size_t keyword_count) {
  Header h;
  h.num_objects = num_objects;
  h.max_list_length = max_list_length;
  h.postings_count = postings_count;
  h.offsets_count = offsets_count;
  h.keyword_count = keyword_count;
  return h;
}

}  // namespace

Status SaveIndexToBuffer(const InvertedIndex& index, bool compressed,
                         std::string* out) {
  out->clear();
  auto sink = [out](const void* data, size_t len) {
    out->append(static_cast<const char*>(data), len);
    return true;
  };
  return WriteIndexTo(
      sink,
      HeaderOf(index.num_objects_, index.max_list_length_,
               index.postings_.size(), index.list_offsets_.size(),
               index.keyword_first_list_.size()),
      index.postings_, index.list_offsets_, index.keyword_first_list_,
      compressed, "<buffer>");
}

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  return SaveIndexToFileImpl(
      HeaderOf(index.num_objects_, index.max_list_length_,
               index.postings_.size(), index.list_offsets_.size(),
               index.keyword_first_list_.size()),
      index.postings_, index.list_offsets_, index.keyword_first_list_,
      /*compressed=*/false, path);
}

Status SaveIndexCompressed(const InvertedIndex& index,
                           const std::string& path) {
  return SaveIndexToFileImpl(
      HeaderOf(index.num_objects_, index.max_list_length_,
               index.postings_.size(), index.list_offsets_.size(),
               index.keyword_first_list_.size()),
      index.postings_, index.list_offsets_, index.keyword_first_list_,
      /*compressed=*/true, path);
}

Result<InvertedIndex> LoadIndexFromStream(std::FILE* f, uint64_t end_offset,
                                          const std::string& path) {
  const long stream_start = std::ftell(f);
  if (stream_start < 0 || static_cast<uint64_t>(stream_start) > end_offset) {
    return Status::Internal("cannot determine read position: " + path);
  }
  char magic[8];
  if (static_cast<uint64_t>(stream_start) + sizeof(magic) > end_offset ||
      std::fread(magic, 1, sizeof(magic), f) != sizeof(magic)) {
    return Status::InvalidArgument("not a GENIE index file: " + path);
  }
  const bool compressed = std::memcmp(magic, kMagicV2, 8) == 0;
  if (!compressed && std::memcmp(magic, kMagicV1, 8) != 0) {
    return Status::InvalidArgument("not a GENIE index file: " + path);
  }

  InvertedIndex index;
  Header h;
  const bool ok =
      ReadPodBounded(f, &h.num_objects, end_offset, path).ok() &&
      ReadPodBounded(f, &h.max_list_length, end_offset, path).ok() &&
      ReadPodBounded(f, &h.postings_count, end_offset, path).ok() &&
      ReadPodBounded(f, &h.offsets_count, end_offset, path).ok() &&
      ReadPodBounded(f, &h.keyword_count, end_offset, path).ok();
  if (!ok) return Status::InvalidArgument("truncated header: " + path);
  if (h.offsets_count == 0 || h.keyword_count == 0) {
    return Status::InvalidArgument("malformed header counts: " + path);
  }
  index.num_objects_ = h.num_objects;
  index.max_list_length_ = h.max_list_length;

  if (compressed) {
    uint64_t blob_size = 0;
    std::vector<uint8_t> blob;
    GENIE_RETURN_NOT_OK(ReadPodBounded(f, &blob_size, end_offset, path));
    GENIE_RETURN_NOT_OK(
        ReadBoundedArray(f, &blob, blob_size, end_offset, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f, &index.list_offsets_,
                                         h.offsets_count, end_offset, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f, &index.keyword_first_list_,
                                         h.keyword_count, end_offset, path));
    // Every posting occupies >= 1 varint byte, so a plausible count cannot
    // exceed the blob size (bounds the reserve below).
    if (h.postings_count > blob.size()) {
      return Status::InvalidArgument("header count exceeds file size: " +
                                     path);
    }
    index.postings_.reserve(h.postings_count);
    size_t pos = 0;
    std::vector<uint32_t> list;
    for (size_t l = 0; l + 1 < index.list_offsets_.size(); ++l) {
      if (index.list_offsets_[l + 1] < index.list_offsets_[l]) {
        return Status::InvalidArgument("non-monotone list offsets: " + path);
      }
      const size_t count =
          index.list_offsets_[l + 1] - index.list_offsets_[l];
      // Each encoded posting takes >= 1 byte, so forged offsets demanding
      // more values than the blob has left cannot pre-reserve gigabytes
      // inside the decoder.
      if (count > blob.size() - pos) {
        return Status::InvalidArgument("list offsets exceed blob: " + path);
      }
      GENIE_RETURN_NOT_OK(
          varint::DecodeDeltaAscending(blob, &pos, count, &list));
      index.postings_.insert(index.postings_.end(), list.begin(), list.end());
    }
    if (index.postings_.size() != h.postings_count) {
      return Status::InvalidArgument("postings count mismatch: " + path);
    }
  } else {
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f, &index.postings_,
                                         h.postings_count, end_offset, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f, &index.list_offsets_,
                                         h.offsets_count, end_offset, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f, &index.keyword_first_list_,
                                         h.keyword_count, end_offset, path));
  }

  uint64_t checksum = 0;
  GENIE_RETURN_NOT_OK(ReadPodBounded(f, &checksum, end_offset, path));
  if (checksum != IndexChecksum(index.postings_, index.list_offsets_,
                                index.keyword_first_list_)) {
    return Status::InvalidArgument("checksum mismatch (corrupted): " + path);
  }
  GENIE_RETURN_NOT_OK(ValidateStructure(index, path, index.list_offsets_,
                                        index.keyword_first_list_,
                                        index.postings_.size()));
  // The stream must account for every byte of its section; leftover bytes
  // mean the section length and the stream disagree (corrupted container).
  const long stream_end = std::ftell(f);
  if (stream_end < 0 ||
      static_cast<uint64_t>(stream_end) != end_offset) {
    return Status::InvalidArgument("index stream size mismatch: " + path);
  }
  return index;
}

Result<InvertedIndex> LoadIndex(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  GENIE_ASSIGN_OR_RETURN(const uint64_t file_bytes, FileBytes(f.get(), path));
  return LoadIndexFromStream(f.get(), file_bytes, path);
}

}  // namespace genie
