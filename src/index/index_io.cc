#include "index/index_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "index/varint.h"
#include "lsh/murmur3.h"

namespace genie {

namespace {

constexpr char kMagicV1[8] = {'G', 'N', 'I', 'E', 'I', 'D', 'X', '1'};
constexpr char kMagicV2[8] = {'G', 'N', 'I', 'E', 'I', 'D', 'X', '2'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}
template <typename T>
bool WriteArray(std::FILE* f, const std::vector<T>& v) {
  return v.empty() || std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}
template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

/// Reads `count` elements after bounding `count` against the bytes left in
/// the file. Counts come straight from the (possibly truncated or hostile)
/// header; resizing first would let a forged multi-terabyte count drive the
/// vector into a huge allocation / std::bad_alloc before any checksum runs.
template <typename T>
Status ReadBoundedArray(std::FILE* f, std::vector<T>* v, uint64_t count,
                        uint64_t file_bytes, const std::string& path) {
  const long pos = std::ftell(f);
  if (pos < 0 || static_cast<uint64_t>(pos) > file_bytes) {
    return Status::Internal("cannot determine read position: " + path);
  }
  const uint64_t remaining = file_bytes - static_cast<uint64_t>(pos);
  if (count > remaining / sizeof(T)) {
    return Status::InvalidArgument("header count exceeds file size: " + path);
  }
  v->resize(count);
  if (count != 0 && std::fread(v->data(), sizeof(T), count, f) != count) {
    return Status::InvalidArgument("truncated index data: " + path);
  }
  return Status::OK();
}

/// Size of the already-open file, restoring the read position.
Result<uint64_t> FileBytes(std::FILE* f, const std::string& path) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  return static_cast<uint64_t>(end);
}

template <typename T>
uint64_t ArrayDigest(const std::vector<T>& v, uint64_t seed) {
  return lsh::Murmur3_64(v.data(), v.size() * sizeof(T), seed);
}

uint64_t IndexChecksum(const std::vector<ObjectId>& postings,
                       const std::vector<uint32_t>& list_offsets,
                       const std::vector<uint32_t>& keyword_first_list) {
  uint64_t digest = ArrayDigest(postings, 0x47454E4945ULL);
  digest = ArrayDigest(list_offsets, digest);
  return ArrayDigest(keyword_first_list, digest);
}

struct Header {
  uint32_t num_objects = 0;
  uint32_t max_list_length = 0;
  uint64_t postings_count = 0;
  uint64_t offsets_count = 0;
  uint64_t keyword_count = 0;
};

bool WriteHeader(std::FILE* f, const char* magic, const Header& h) {
  return std::fwrite(magic, 1, 8, f) == 8 && WritePod(f, h.num_objects) &&
         WritePod(f, h.max_list_length) && WritePod(f, h.postings_count) &&
         WritePod(f, h.offsets_count) && WritePod(f, h.keyword_count);
}

Status ValidateStructure(const InvertedIndex& index, const std::string& path,
                         const std::vector<uint32_t>& list_offsets,
                         const std::vector<uint32_t>& keyword_first_list,
                         size_t postings_count) {
  if (list_offsets.front() != 0 || list_offsets.back() != postings_count) {
    return Status::InvalidArgument("inconsistent list offsets: " + path);
  }
  for (size_t i = 1; i < list_offsets.size(); ++i) {
    if (list_offsets[i] < list_offsets[i - 1]) {
      return Status::InvalidArgument("non-monotone list offsets: " + path);
    }
  }
  if (keyword_first_list.back() != index.num_lists()) {
    return Status::InvalidArgument("inconsistent keyword map: " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  Header h;
  h.num_objects = index.num_objects_;
  h.max_list_length = index.max_list_length_;
  h.postings_count = index.postings_.size();
  h.offsets_count = index.list_offsets_.size();
  h.keyword_count = index.keyword_first_list_.size();
  bool ok = WriteHeader(f.get(), kMagicV1, h);
  ok = ok && WriteArray(f.get(), index.postings_);
  ok = ok && WriteArray(f.get(), index.list_offsets_);
  ok = ok && WriteArray(f.get(), index.keyword_first_list_);
  ok = ok && WritePod(f.get(),
                      IndexChecksum(index.postings_, index.list_offsets_,
                                    index.keyword_first_list_));
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

Status SaveIndexCompressed(const InvertedIndex& index,
                           const std::string& path) {
  // Compress per (sub)list so decoding can re-delimit via list_offsets.
  std::vector<uint8_t> blob;
  blob.reserve(index.postings_.size());  // postings rarely expand past 1B/id
  for (uint32_t l = 0; l < index.num_lists(); ++l) {
    const auto ref = index.List(l);
    GENIE_RETURN_NOT_OK(varint::EncodeDeltaAscending(
        std::span<const uint32_t>(index.postings_)
            .subspan(ref.begin, ref.length()),
        &blob));
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  Header h;
  h.num_objects = index.num_objects_;
  h.max_list_length = index.max_list_length_;
  h.postings_count = index.postings_.size();
  h.offsets_count = index.list_offsets_.size();
  h.keyword_count = index.keyword_first_list_.size();
  bool ok = WriteHeader(f.get(), kMagicV2, h);
  ok = ok && WritePod(f.get(), static_cast<uint64_t>(blob.size()));
  ok = ok && WriteArray(f.get(), blob);
  ok = ok && WriteArray(f.get(), index.list_offsets_);
  ok = ok && WriteArray(f.get(), index.keyword_first_list_);
  ok = ok && WritePod(f.get(),
                      IndexChecksum(index.postings_, index.list_offsets_,
                                    index.keyword_first_list_));
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<InvertedIndex> LoadIndex(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic)) {
    return Status::InvalidArgument("not a GENIE index file: " + path);
  }
  const bool compressed = std::memcmp(magic, kMagicV2, 8) == 0;
  if (!compressed && std::memcmp(magic, kMagicV1, 8) != 0) {
    return Status::InvalidArgument("not a GENIE index file: " + path);
  }

  GENIE_ASSIGN_OR_RETURN(const uint64_t file_bytes, FileBytes(f.get(), path));

  InvertedIndex index;
  Header h;
  bool ok = ReadPod(f.get(), &h.num_objects) &&
            ReadPod(f.get(), &h.max_list_length) &&
            ReadPod(f.get(), &h.postings_count) &&
            ReadPod(f.get(), &h.offsets_count) &&
            ReadPod(f.get(), &h.keyword_count);
  if (!ok) return Status::InvalidArgument("truncated header: " + path);
  if (h.offsets_count == 0 || h.keyword_count == 0) {
    return Status::InvalidArgument("malformed header counts: " + path);
  }
  index.num_objects_ = h.num_objects;
  index.max_list_length_ = h.max_list_length;

  if (compressed) {
    uint64_t blob_size = 0;
    std::vector<uint8_t> blob;
    if (!ReadPod(f.get(), &blob_size)) {
      return Status::InvalidArgument("truncated index data: " + path);
    }
    GENIE_RETURN_NOT_OK(
        ReadBoundedArray(f.get(), &blob, blob_size, file_bytes, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f.get(), &index.list_offsets_,
                                         h.offsets_count, file_bytes, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f.get(), &index.keyword_first_list_,
                                         h.keyword_count, file_bytes, path));
    // Every posting occupies >= 1 varint byte, so a plausible count cannot
    // exceed the blob size (bounds the reserve below).
    if (h.postings_count > blob.size()) {
      return Status::InvalidArgument("header count exceeds file size: " +
                                     path);
    }
    index.postings_.reserve(h.postings_count);
    size_t pos = 0;
    std::vector<uint32_t> list;
    for (size_t l = 0; l + 1 < index.list_offsets_.size(); ++l) {
      if (index.list_offsets_[l + 1] < index.list_offsets_[l]) {
        return Status::InvalidArgument("non-monotone list offsets: " + path);
      }
      const size_t count =
          index.list_offsets_[l + 1] - index.list_offsets_[l];
      // Each encoded posting takes >= 1 byte, so forged offsets demanding
      // more values than the blob has left cannot pre-reserve gigabytes
      // inside the decoder.
      if (count > blob.size() - pos) {
        return Status::InvalidArgument("list offsets exceed blob: " + path);
      }
      GENIE_RETURN_NOT_OK(
          varint::DecodeDeltaAscending(blob, &pos, count, &list));
      index.postings_.insert(index.postings_.end(), list.begin(), list.end());
    }
    if (index.postings_.size() != h.postings_count) {
      return Status::InvalidArgument("postings count mismatch: " + path);
    }
  } else {
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f.get(), &index.postings_,
                                         h.postings_count, file_bytes, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f.get(), &index.list_offsets_,
                                         h.offsets_count, file_bytes, path));
    GENIE_RETURN_NOT_OK(ReadBoundedArray(f.get(), &index.keyword_first_list_,
                                         h.keyword_count, file_bytes, path));
  }

  uint64_t checksum = 0;
  if (!ReadPod(f.get(), &checksum)) {
    return Status::InvalidArgument("truncated checksum: " + path);
  }
  if (checksum != IndexChecksum(index.postings_, index.list_offsets_,
                                index.keyword_first_list_)) {
    return Status::InvalidArgument("checksum mismatch (corrupted): " + path);
  }
  GENIE_RETURN_NOT_OK(ValidateStructure(index, path, index.list_offsets_,
                                        index.keyword_first_list_,
                                        index.postings_.size()));
  return index;
}

}  // namespace genie
