#include "index/inverted_index.h"

// InvertedIndex is a passive container; its construction logic lives in
// index_builder.cc. This translation unit anchors the class for the build.

namespace genie {}  // namespace genie
