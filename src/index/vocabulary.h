#pragma once

/// \file vocabulary.h
/// Keyword encoders: GENIE keywords are dense integers. Structured data
/// (relational tuples, LSH signatures) uses DimValueEncoder — the ordered
/// pair (dimension, value) of Example 2.1 — while SA data (n-grams, words)
/// uses StringVocabulary.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "common/status.h"
#include "index/types.h"

namespace genie {

/// Encodes (dimension d, discrete value v) pairs into dense keywords by
/// laying dimensions out contiguously: keyword = offset[d] + v with
/// v in [0, buckets_per_dim[d]).
class DimValueEncoder {
 public:
  /// One entry per dimension giving the number of discrete values (buckets)
  /// of that dimension. All entries must be >= 1.
  explicit DimValueEncoder(std::vector<uint32_t> buckets_per_dim);

  /// Convenience: `dims` dimensions with a uniform bucket count.
  DimValueEncoder(uint32_t dims, uint32_t buckets);

  uint32_t num_dims() const {
    return static_cast<uint32_t>(buckets_.size());
  }
  uint32_t buckets(uint32_t dim) const { return buckets_[dim]; }
  /// Total keyword universe size (Σ buckets).
  uint32_t vocab_size() const { return offsets_.back(); }

  /// Encodes one pair; errors when dim or value is out of range.
  Result<Keyword> Encode(uint32_t dim, uint32_t value) const;

  /// Precondition-checked fast path (GENIE_DCHECK only).
  Keyword EncodeUnchecked(uint32_t dim, uint32_t value) const {
    GENIE_DCHECK(dim < num_dims() && value < buckets_[dim]);
    return offsets_[dim] + value;
  }

  /// Inverse of Encode.
  std::pair<uint32_t, uint32_t> Decode(Keyword kw) const;

 private:
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> offsets_;  // size num_dims + 1
};

/// Incrementally built token vocabulary for SA decompositions.
class StringVocabulary {
 public:
  /// Returns the keyword for `token`, creating it when unseen.
  Keyword GetOrAdd(std::string_view token);

  /// Returns the keyword or kInvalidKeyword when the token is unknown.
  /// Queries with unknown tokens simply match no postings list.
  Keyword Find(std::string_view token) const;

  size_t size() const { return map_.size(); }

  /// Bundle persistence: tokens are written in keyword order, so the exact
  /// token -> keyword mapping (not just the token set) round-trips.
  void Serialize(serialize::Writer* writer) const;
  static Result<StringVocabulary> Deserialize(serialize::Reader* reader);

 private:
  std::unordered_map<std::string, Keyword> map_;
};

}  // namespace genie
