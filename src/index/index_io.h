#pragma once

/// \file index_io.h
/// Binary serialization of InvertedIndex — build the index once on a
/// beefy host, ship the file, mmap-or-load and serve (the paper treats
/// index building as an offline, one-time cost; this makes that workflow
/// concrete for library users).
///
/// Format (little-endian):
///   magic "GNIEIDX1" | u32 num_objects | u32 max_list_length
///   | u64 postings_count | u64 list_offsets_count | u64 keyword_count
///   | postings[] u32 | list_offsets[] u32 | keyword_first_list[] u32
///   | u64 checksum (murmur3 of the three arrays)

#include <string>

#include "common/result.h"
#include "index/inverted_index.h"

namespace genie {

/// Writes `index` to `path`, replacing any existing file.
Status SaveIndex(const InvertedIndex& index, const std::string& path);

/// Like SaveIndex but with varint-delta compressed postings (format
/// "GNIEIDX2"), typically 2-4x smaller. Requires every (sub)list's postings
/// to be ascending — true for every GENIE pipeline, which indexes objects
/// in id order; fails with InvalidArgument otherwise (fall back to
/// SaveIndex).
Status SaveIndexCompressed(const InvertedIndex& index,
                           const std::string& path);

/// Loads an index previously written by SaveIndex or SaveIndexCompressed
/// (the format is detected from the header). Fails with InvalidArgument on
/// a malformed or corrupted file.
Result<InvertedIndex> LoadIndex(const std::string& path);

}  // namespace genie
