#pragma once

/// \file index_io.h
/// Binary serialization of InvertedIndex — build the index once on a
/// beefy host, ship the file, mmap-or-load and serve (the paper treats
/// index building as an offline, one-time cost; this makes that workflow
/// concrete for library users).
///
/// Format (little-endian):
///   magic "GNIEIDX1" | u32 num_objects | u32 max_list_length
///   | u64 postings_count | u64 list_offsets_count | u64 keyword_count
///   | postings[] u32 | list_offsets[] u32 | keyword_first_list[] u32
///   | u64 checksum (murmur3 of the three arrays)

#include <cstdio>
#include <string>

#include "common/result.h"
#include "index/inverted_index.h"

namespace genie {

/// Writes `index` to `path`, replacing any existing file. Stream health is
/// verified through the final flush, so a full disk reports IOError instead
/// of leaving a truncated-but-"OK" file.
Status SaveIndex(const InvertedIndex& index, const std::string& path);

/// Like SaveIndex but with varint-delta compressed postings (format
/// "GNIEIDX2"), typically 2-4x smaller. Requires every (sub)list's postings
/// to be ascending — true for every GENIE pipeline, which indexes objects
/// in id order; fails with InvalidArgument otherwise (fall back to
/// SaveIndex).
Status SaveIndexCompressed(const InvertedIndex& index,
                           const std::string& path);

/// Serializes the exact SaveIndex / SaveIndexCompressed byte stream into
/// `out` (replacing its contents) instead of a file, for embedding the
/// index in a larger container (engine bundles).
Status SaveIndexToBuffer(const InvertedIndex& index, bool compressed,
                         std::string* out);

/// Loads an index previously written by SaveIndex or SaveIndexCompressed
/// (the format is detected from the header). Fails with InvalidArgument on
/// a malformed or corrupted file.
Result<InvertedIndex> LoadIndex(const std::string& path);

/// Reads an index stream embedded in a larger open file: the stream starts
/// at the current read position and must end exactly at `end_offset`. All
/// header counts are bounded against the section end before any allocation
/// (the same hardening as LoadIndex); a stream that stops short of
/// `end_offset` fails with InvalidArgument. `path` is used in error
/// messages only.
Result<InvertedIndex> LoadIndexFromStream(std::FILE* f, uint64_t end_offset,
                                          const std::string& path);

}  // namespace genie
