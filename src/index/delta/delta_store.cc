#include "index/delta/delta_store.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace genie {
namespace delta {

bool IsTombstoned(const DeltaSnapshot& snap, ObjectId id) {
  if (snap.tombstones == nullptr) return false;
  return std::binary_search(snap.tombstones->begin(), snap.tombstones->end(),
                            id);
}

DeltaStore::DeltaStore(ObjectId base_num_objects, uint32_t seal_threshold)
    : seal_threshold_(seal_threshold),
      next_id_(base_num_objects),
      tombstones_(std::make_shared<const std::vector<ObjectId>>()),
      folded_(std::make_shared<const std::vector<ObjectId>>()) {
  active_.offsets.push_back(0);
}

ObjectId DeltaStore::Insert(std::span<const Keyword> keywords) {
  std::lock_guard<std::mutex> lock(mu_);
  const ObjectId id = next_id_++;
  active_.ids.push_back(id);
  active_.keywords.insert(active_.keywords.end(), keywords.begin(),
                          keywords.end());
  active_.offsets.push_back(static_cast<uint32_t>(active_.keywords.size()));
  for (Keyword kw : keywords) {
    active_.max_keyword = std::max(active_.max_keyword, kw);
  }
  active_copy_.reset();
  if (seal_threshold_ > 0 && active_.num_objects() >= seal_threshold_) {
    SealLocked();
  }
  return id;
}

bool DeltaStore::Remove(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  // Ever removed before — pending or already folded out by a compaction —
  // means removing again is an error; removal history never resets.
  if (std::binary_search(folded_->begin(), folded_->end(), id)) return false;
  const auto& old = *tombstones_;
  const auto at = std::lower_bound(old.begin(), old.end(), id);
  if (at != old.end() && *at == id) return false;
  auto grown = std::make_shared<std::vector<ObjectId>>();
  grown->reserve(old.size() + 1);
  grown->insert(grown->end(), old.begin(), at);
  grown->push_back(id);
  grown->insert(grown->end(), at, old.end());
  tombstones_ = std::move(grown);
  return true;
}

bool DeltaStore::Tombstoned(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::binary_search(tombstones_->begin(), tombstones_->end(), id) ||
         std::binary_search(folded_->begin(), folded_->end(), id);
}

void DeltaStore::SealLocked() {
  if (active_.num_objects() == 0) return;
  if (active_copy_ != nullptr) {
    // The cached copy is byte-identical; promote it instead of copying.
    sealed_.push_back(std::move(active_copy_));
  } else {
    sealed_.push_back(std::make_shared<const DeltaSegment>(active_));
  }
  active_ = DeltaSegment{};
  active_.offsets.push_back(0);
  active_copy_.reset();
}

void DeltaStore::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  SealLocked();
}

DeltaSnapshot DeltaStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  DeltaSnapshot snap;
  snap.segments = sealed_;
  if (active_.num_objects() > 0) {
    if (active_copy_ == nullptr) {
      active_copy_ = std::make_shared<const DeltaSegment>(active_);
    }
    snap.segments.push_back(active_copy_);
  }
  snap.tombstones = tombstones_;
  snap.folded = folded_;
  snap.next_id = next_id_;
  return snap;
}

void DeltaStore::Prune(const DeltaSnapshot& compacted) {
  std::lock_guard<std::mutex> lock(mu_);
  auto folded = [&](const std::shared_ptr<const DeltaSegment>& seg) {
    for (const auto& done : compacted.segments) {
      if (done.get() == seg.get()) return true;
    }
    return false;
  };
  sealed_.erase(std::remove_if(sealed_.begin(), sealed_.end(), folded),
                sealed_.end());
  if (compacted.tombstones != nullptr && !compacted.tombstones->empty()) {
    // The folded tombstones' ids are gone from the new main index; retire
    // them from the pending list but keep them in the removal history so
    // Remove keeps rejecting them.
    auto kept = std::make_shared<std::vector<ObjectId>>();
    std::set_difference(tombstones_->begin(), tombstones_->end(),
                        compacted.tombstones->begin(),
                        compacted.tombstones->end(),
                        std::back_inserter(*kept));
    tombstones_ = std::move(kept);
    auto history = std::make_shared<std::vector<ObjectId>>();
    std::set_union(folded_->begin(), folded_->end(),
                   compacted.tombstones->begin(), compacted.tombstones->end(),
                   std::back_inserter(*history));
    folded_ = std::move(history);
  }
}

void DeltaStore::Restore(
    std::vector<std::shared_ptr<const DeltaSegment>> sealed,
    std::vector<ObjectId> tombstones, ObjectId next_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sealed_ = std::move(sealed);
  std::sort(tombstones.begin(), tombstones.end());
  tombstones_ =
      std::make_shared<const std::vector<ObjectId>>(std::move(tombstones));
  folded_ = std::make_shared<const std::vector<ObjectId>>();
  next_id_ = next_id;
}

ObjectId DeltaStore::next_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

uint32_t DeltaStore::num_sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(sealed_.size());
}

uint32_t DeltaStore::num_tombstones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(tombstones_->size());
}

bool DeltaStore::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.empty() && active_.num_objects() == 0 &&
         tombstones_->empty();
}

std::vector<std::vector<TopKEntry>> DeltaStore::Match(
    const DeltaSnapshot& snap, std::span<const Query> queries) {
  std::vector<std::vector<TopKEntry>> pools(queries.size());
  if (snap.segments.empty()) return pools;
  // Per query: weight[kw] = how many of the query's item keywords equal kw;
  // an object's count is then sum over its postings of weight[posting]
  // (Definition 2.1, evaluated object-major since segments are CSR by
  // object).
  std::unordered_map<Keyword, uint32_t> weight;
  for (size_t q = 0; q < queries.size(); ++q) {
    weight.clear();
    const Query& query = queries[q];
    for (uint32_t i = 0; i < query.num_items(); ++i) {
      for (Keyword kw : query.item(i)) ++weight[kw];
    }
    if (weight.empty()) continue;
    std::vector<TopKEntry>& pool = pools[q];
    for (const auto& segment : snap.segments) {
      for (uint32_t o = 0; o < segment->num_objects(); ++o) {
        const ObjectId id = segment->ids[o];
        if (IsTombstoned(snap, id)) continue;
        uint32_t count = 0;
        for (Keyword kw : segment->object_keywords(o)) {
          const auto it = weight.find(kw);
          if (it != weight.end()) count += it->second;
        }
        if (count > 0) pool.push_back(TopKEntry{id, count});
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const TopKEntry& a, const TopKEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.id < b.id;
              });
  }
  return pools;
}

void SerializeDelta(const DeltaSnapshot& snap, serialize::Writer* writer) {
  writer->U32(static_cast<uint32_t>(snap.segments.size()));
  for (const auto& segment : snap.segments) {
    writer->Vec(segment->ids);
    writer->Vec(segment->offsets);
    writer->Vec(segment->keywords);
  }
  // The full removal history: pending tombstones plus the ids earlier
  // compactions already folded out. Both are sorted and disjoint.
  std::vector<ObjectId> removed;
  const auto* pending = snap.tombstones.get();
  const auto* folded = snap.folded.get();
  if (pending != nullptr && folded != nullptr) {
    std::merge(pending->begin(), pending->end(), folded->begin(),
               folded->end(), std::back_inserter(removed));
  } else if (pending != nullptr) {
    removed = *pending;
  } else if (folded != nullptr) {
    removed = *folded;
  }
  writer->Vec(removed);
  writer->U64(snap.next_id);
}

Status DeserializeDelta(serialize::Reader* reader, DeltaStore* store) {
  uint32_t num_segments = 0;
  GENIE_RETURN_NOT_OK(reader->U32(&num_segments));
  std::vector<std::shared_ptr<const DeltaSegment>> sealed;
  sealed.reserve(num_segments);
  for (uint32_t s = 0; s < num_segments; ++s) {
    DeltaSegment segment;
    GENIE_RETURN_NOT_OK(reader->Vec(&segment.ids));
    GENIE_RETURN_NOT_OK(reader->Vec(&segment.offsets));
    GENIE_RETURN_NOT_OK(reader->Vec(&segment.keywords));
    if (segment.offsets.size() != segment.ids.size() + 1 ||
        segment.offsets.empty() || segment.offsets.front() != 0 ||
        segment.offsets.back() != segment.keywords.size()) {
      return Status::InvalidArgument("corrupt delta segment layout");
    }
    for (size_t i = 1; i < segment.offsets.size(); ++i) {
      if (segment.offsets[i] < segment.offsets[i - 1]) {
        return Status::InvalidArgument("corrupt delta segment offsets");
      }
    }
    for (Keyword kw : segment.keywords) {
      segment.max_keyword = std::max(segment.max_keyword, kw);
    }
    sealed.push_back(std::make_shared<const DeltaSegment>(std::move(segment)));
  }
  std::vector<ObjectId> tombstones;
  GENIE_RETURN_NOT_OK(reader->Vec(&tombstones));
  uint64_t next_id = 0;
  GENIE_RETURN_NOT_OK(reader->U64(&next_id));
  for (const auto& segment : sealed) {
    for (ObjectId id : segment->ids) {
      if (id >= next_id) {
        return Status::InvalidArgument("delta segment id beyond watermark");
      }
    }
  }
  store->Restore(std::move(sealed), std::move(tombstones),
                 static_cast<ObjectId>(next_id));
  return Status::OK();
}

}  // namespace delta
}  // namespace genie
