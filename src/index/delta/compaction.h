#pragma once

/// \file compaction.h
/// Compaction of the LSM-style mutable layer: rewrite the frozen main
/// index plus a delta snapshot (sealed segments + tombstones) into a fresh
/// immutable InvertedIndex, preserving object ids. The result is
/// hot-swapped behind EngineBackend by the MutationController; this file
/// is the pure (lock-free) rebuild step.

#include "common/result.h"
#include "index/delta/delta_store.h"
#include "index/index_builder.h"
#include "index/inverted_index.h"

namespace genie {
namespace delta {

/// Folds `snap` into `main`: tombstoned objects (main or delta) are
/// dropped, delta objects keep their assigned ids, and the object-id space
/// is padded to snap.next_id so later inserts stay disjoint. The snapshot
/// must contain only sealed segments (DeltaStore::Seal first) so the
/// caller can Prune by identity afterwards. The vocabulary grows to cover
/// the largest delta keyword.
Result<InvertedIndex> BuildCompactedIndex(const InvertedIndex& main,
                                          const DeltaSnapshot& snap,
                                          const IndexBuildOptions& options);

}  // namespace delta
}  // namespace genie
