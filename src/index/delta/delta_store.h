#pragma once

/// \file delta_store.h
/// The mutable layer of the LSM-style live-mutation design: newly inserted
/// objects land in small in-memory delta segments (per-object keyword
/// lists, the same postings an InvertedIndexBuilder would emit), removals
/// become tombstones consulted at merge time. The frozen main index is
/// never touched; searches match it as before and additionally match the
/// active+sealed segments on the host, and a background compaction pass
/// periodically folds delta+main into a fresh immutable index.
///
/// Concurrency: every member is guarded by an internal mutex, so the store
/// can be shared between the facade's mutation path, the search overlay,
/// and the compaction thread. Readers work on a DeltaSnapshot — immutable
/// shared state that stays valid after the store moves on.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "core/query.h"
#include "index/types.h"

namespace genie {
namespace delta {

/// One batch of inserted objects: a CSR of per-object keyword lists.
/// Keywords repeat to encode multiplicity, exactly like the postings the
/// attribute pipeline would emit for the object. Immutable once sealed.
struct DeltaSegment {
  std::vector<ObjectId> ids;
  std::vector<uint32_t> offsets;  // size ids.size() + 1; offsets[0] == 0
  std::vector<Keyword> keywords;
  /// Max keyword in `keywords` (0 when the segment has no postings); the
  /// compacted index's vocabulary must cover it.
  Keyword max_keyword = 0;

  uint32_t num_objects() const { return static_cast<uint32_t>(ids.size()); }
  std::span<const Keyword> object_keywords(uint32_t i) const {
    return std::span<const Keyword>(keywords)
        .subspan(offsets[i], offsets[i + 1] - offsets[i]);
  }
};

/// An immutable view of the store at one instant. Segments and the
/// tombstone lists are shared, never mutated in place.
struct DeltaSnapshot {
  std::vector<std::shared_ptr<const DeltaSegment>> segments;
  /// Pending removals: ids the main index still contains. Searches filter
  /// these and compaction folds them out. Sorted.
  std::shared_ptr<const std::vector<ObjectId>> tombstones;
  /// Removals already folded out by an earlier compaction: the ids no
  /// longer exist anywhere, but the record must survive so re-removing
  /// them stays an error and persistence keeps the full removal history.
  /// Sorted, disjoint from `tombstones`. May be null.
  std::shared_ptr<const std::vector<ObjectId>> folded;
  /// The id the next insert would take (base + all inserts so far).
  ObjectId next_id = 0;

  bool empty() const {
    return segments.empty() &&
           (tombstones == nullptr || tombstones->empty());
  }
  uint32_t num_tombstones() const {
    return tombstones == nullptr ? 0
                                 : static_cast<uint32_t>(tombstones->size());
  }
};

/// Whether `id` is tombstoned in the snapshot (binary search).
bool IsTombstoned(const DeltaSnapshot& snap, ObjectId id);

class DeltaStore {
 public:
  /// New ids start at `base_num_objects` (the frozen index's id space stays
  /// untouched). The active segment auto-seals after `seal_threshold`
  /// objects; 0 means never (manual Seal()/Flush only).
  DeltaStore(ObjectId base_num_objects, uint32_t seal_threshold);

  /// Appends one object to the active segment; returns its id. Ids are
  /// monotonically increasing and never reused.
  ObjectId Insert(std::span<const Keyword> keywords);

  /// Tombstones `id`. False when it was ever removed before — including
  /// removals an earlier compaction already folded out.
  bool Remove(ObjectId id);

  bool Tombstoned(ObjectId id) const;

  /// Rotates a non-empty active segment into the sealed list.
  void Seal();

  DeltaSnapshot snapshot() const;

  /// Drops exactly the sealed segments captured in `compacted` (pointer
  /// identity) and retires its tombstones from the pending list into the
  /// folded history: they are now folded into the swapped-in main index.
  /// Anything added since the snapshot survives.
  void Prune(const DeltaSnapshot& compacted);

  /// Restore path (bundle open): adopt persisted sealed segments,
  /// tombstones, and the id watermark.
  void Restore(std::vector<std::shared_ptr<const DeltaSegment>> sealed,
               std::vector<ObjectId> tombstones, ObjectId next_id);

  ObjectId next_id() const;
  uint32_t num_sealed() const;
  /// Pending tombstones only (the folded history is not counted — those
  /// ids are already absent from the main index).
  uint32_t num_tombstones() const;
  /// True when there is nothing the main index does not already cover.
  bool empty() const;

  /// Host-side match-count evaluation of the snapshot's segments: per query
  /// the entries of every non-tombstoned delta object with a nonzero count,
  /// sorted by count desc then id asc (the engine's candidate-pool order).
  /// Mirrors Definition 2.1 exactly: an object's count is the number of its
  /// postings covered by the query's items.
  static std::vector<std::vector<TopKEntry>> Match(
      const DeltaSnapshot& snap, std::span<const Query> queries);

 private:
  void SealLocked();

  mutable std::mutex mu_;
  uint32_t seal_threshold_;
  ObjectId next_id_;
  DeltaSegment active_;
  /// Lazily built immutable copy of `active_`, shared with snapshots and
  /// invalidated by the next insert.
  mutable std::shared_ptr<const DeltaSegment> active_copy_;
  std::vector<std::shared_ptr<const DeltaSegment>> sealed_;
  std::shared_ptr<const std::vector<ObjectId>> tombstones_;
  std::shared_ptr<const std::vector<ObjectId>> folded_;
};

/// Bundle persistence of the mutable layer (the GNIEBNDL v2 mutation
/// section): sealed segments + tombstone log + id watermark. The caller
/// seals the active segment first so nothing is lost. The written
/// tombstone log is the union of the snapshot's pending and folded lists
/// — the full removal history — and restores as pending (the next
/// compaction re-folds the already-absent ids as a no-op).
void SerializeDelta(const DeltaSnapshot& snap, serialize::Writer* writer);
Status DeserializeDelta(serialize::Reader* reader, DeltaStore* store);

}  // namespace delta
}  // namespace genie
