#include "index/delta/compaction.h"

#include <algorithm>

namespace genie {
namespace delta {

Result<InvertedIndex> BuildCompactedIndex(const InvertedIndex& main,
                                          const DeltaSnapshot& snap,
                                          const IndexBuildOptions& options) {
  uint32_t vocab_size = std::max(1u, main.vocab_size());
  for (const auto& segment : snap.segments) {
    if (!segment->keywords.empty()) {
      vocab_size = std::max(vocab_size, segment->max_keyword + 1);
    }
  }
  InvertedIndexBuilder builder(vocab_size);
  // Main postings keyword-major: the builder's counting sort is stable, so
  // each keyword's list keeps its ascending-id order, with the (younger,
  // larger-id) delta postings appended after — the ascending-per-list
  // invariant the compressed index writer relies on holds.
  const std::span<const ObjectId> postings = main.postings();
  for (Keyword kw = 0; kw < main.vocab_size(); ++kw) {
    auto [first, count] = main.KeywordLists(kw);
    for (uint32_t l = 0; l < count; ++l) {
      const InvertedIndex::ListRef ref = main.List(first + l);
      for (uint32_t pos = ref.begin; pos < ref.end; ++pos) {
        const ObjectId id = postings[pos];
        if (!IsTombstoned(snap, id)) builder.Add(id, kw);
      }
    }
  }
  for (const auto& segment : snap.segments) {
    for (uint32_t o = 0; o < segment->num_objects(); ++o) {
      const ObjectId id = segment->ids[o];
      if (IsTombstoned(snap, id)) continue;
      builder.AddObject(id, segment->object_keywords(o));
    }
  }
  // Pad the id space to the insert watermark: ids are never reused, so the
  // count-table domain must cover every id handed out even when the
  // youngest objects were tombstoned away.
  builder.EnsureNumObjects(std::max(snap.next_id, main.num_objects()));
  return std::move(builder).Build(options);
}

}  // namespace delta
}  // namespace genie
