#include "index/delta/mutation_controller.h"

#include <chrono>
#include <utility>

#include "index/delta/compaction.h"

namespace genie {
namespace delta {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

MutationController::MutationController(EngineBackend* backend,
                                       ObjectId base_num_objects,
                                       const MutationOptions& options)
    : backend_(backend),
      options_(options),
      delta_(base_num_objects, options.seal_threshold) {
  backend_->AttachDeltaStore(&delta_);
  worker_ = std::thread([this] { WorkerLoop(); });
}

MutationController::~MutationController() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

ObjectId MutationController::Insert(
    std::span<const Keyword> keywords,
    const std::function<void(ObjectId)>& on_inserted) {
  bool request_compact = false;
  ObjectId id = kInvalidObjectId;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    id = delta_.Insert(keywords);
    if (on_inserted) on_inserted(id);
    ++stats_.inserts;
    request_compact = options_.auto_compact_segments > 0 &&
                      delta_.num_sealed() >= options_.auto_compact_segments;
    if (request_compact) compact_requested_ = true;
  }
  // The new object is visible to every subsequent search (delta overlay),
  // so cached serving-layer answers are stale from this point on.
  backend_->BumpDataGeneration();
  if (request_compact) work_cv_.notify_all();
  return id;
}

Status MutationController::Remove(ObjectId id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (id >= delta_.next_id()) {
    return Status::InvalidArgument("cannot remove: id was never assigned");
  }
  if (!delta_.Remove(id)) {
    return Status::InvalidArgument("cannot remove: id is already removed");
  }
  ++stats_.removes;
  // Tombstoned ids disappear from all subsequent results immediately.
  backend_->BumpDataGeneration();
  return Status::OK();
}

Status MutationController::Flush() {
  std::unique_lock<std::mutex> lock(state_mu_);
  delta_.Seal();
  // Wait for a pass that *begins* after this point: a pass already running
  // snapshotted before the seal and may miss it.
  const uint64_t target = passes_started_ + 1;
  compact_requested_ = true;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return passes_finished_ >= target || stop_; });
  return last_compact_status_;
}

MutationController::Pause MutationController::PauseMutation() {
  std::unique_lock<std::mutex> lock(state_mu_);
  delta_.Seal();
  return Pause(std::move(lock));
}

MutationStats MutationController::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

void MutationController::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(state_mu_);
      work_cv_.wait(lock, [&] { return stop_ || compact_requested_; });
      if (stop_) {
        // Unblock any Flush caller waiting for a pass that will never run.
        done_cv_.notify_all();
        return;
      }
      compact_requested_ = false;
      ++passes_started_;
    }
    Status status = CompactOnce();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++passes_finished_;
      last_compact_status_ = std::move(status);
    }
    done_cv_.notify_all();
  }
}

Status MutationController::CompactOnce() {
  DeltaSnapshot snap;
  const InvertedIndex* main = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    // Seal first so the snapshot holds only sealed segments: Prune drops
    // them by pointer identity, and a still-active segment's copy could
    // not be matched up — its objects would be served twice after the
    // swap.
    delta_.Seal();
    snap = delta_.snapshot();
    if (snap.empty()) return Status::OK();
    // Only this thread swaps, so the pointer stays valid outside the lock.
    main = &backend_->index();
  }

  const auto build_start = std::chrono::steady_clock::now();
  GENIE_ASSIGN_OR_RETURN(InvertedIndex compacted,
                         BuildCompactedIndex(*main, snap, options_.build));
  auto fresh = std::make_shared<const InvertedIndex>(std::move(compacted));
  const double build_seconds = SecondsSince(build_start);

  std::lock_guard<std::mutex> lock(state_mu_);
  const auto commit_start = std::chrono::steady_clock::now();
  // Swap + prune are one atomic step under the backend mutex: no execution
  // can pair the new index with the unpruned delta or vice versa.
  GENIE_RETURN_NOT_OK(
      backend_->SwapIndex(std::move(fresh), [&] { delta_.Prune(snap); }));
  ++stats_.compactions;
  stats_.last_compact_seconds = build_seconds;
  stats_.last_pause_seconds = SecondsSince(commit_start);
  return Status::OK();
}

}  // namespace delta
}  // namespace genie
