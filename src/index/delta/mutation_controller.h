#pragma once

/// \file mutation_controller.h
/// Orchestrates the mutable layer behind one engine: owns the DeltaStore,
/// validates and applies Insert/Remove, and runs the background compaction
/// thread that folds delta+main into a fresh immutable index and hot-swaps
/// it behind the EngineBackend (generation-checked, so in-flight pipelined
/// streams never pause — their stale staged chunks simply re-execute).
///
/// Lock hierarchy (never acquired in reverse): the controller's state
/// mutex -> the backend's mutex -> the DeltaStore's internal mutex. The
/// search hot path takes only the latter two; Insert/Remove/Flush/Save
/// serialize on the state mutex.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>

#include "common/result.h"
#include "core/engine_backend.h"
#include "index/delta/delta_store.h"
#include "index/index_builder.h"

namespace genie {
namespace delta {

struct MutationOptions {
  /// Objects per delta segment before the active segment auto-seals.
  uint32_t seal_threshold = 128;
  /// Sealed segments that trigger a background compaction; 0 disables the
  /// automatic trigger (Flush still compacts).
  uint32_t auto_compact_segments = 4;
  /// Build options for the compacted index rebuild (keeps the caller's
  /// load-balance splitting).
  IndexBuildOptions build;
};

/// Counters for observability and the mutation bench.
struct MutationStats {
  uint64_t inserts = 0;
  uint64_t removes = 0;
  uint64_t compactions = 0;
  /// Wall seconds of the last compaction's off-line rebuild (no locks held).
  double last_compact_seconds = 0;
  /// Wall seconds the last compaction commit held the state lock (the only
  /// window in which mutations — never searches — stall).
  double last_pause_seconds = 0;
};

class MutationController {
 public:
  /// `backend` must outlive the controller; the controller attaches its
  /// DeltaStore to it. `base_num_objects` seeds the id watermark (the
  /// frozen index's id space, or a restored bundle's watermark via
  /// DeltaStore::Restore).
  MutationController(EngineBackend* backend, ObjectId base_num_objects,
                     const MutationOptions& options);
  ~MutationController();

  MutationController(const MutationController&) = delete;
  MutationController& operator=(const MutationController&) = delete;

  /// Appends one object; returns its id. `on_inserted` (may be empty) runs
  /// under the state lock right after the id is assigned — modality layers
  /// use it to append the object's side data (rerank rows, verify
  /// sequences) atomically with the id assignment.
  ObjectId Insert(std::span<const Keyword> keywords,
                  const std::function<void(ObjectId)>& on_inserted = {});

  /// Tombstones `id`. InvalidArgument when the id was never assigned or is
  /// already tombstoned.
  Status Remove(ObjectId id);

  /// Seals the active segment and synchronously runs a compaction pass
  /// begun after this call: on return every prior mutation is folded into
  /// the (swapped) main index and the delta layer is empty.
  Status Flush();

  /// Stops mutations and compaction commits for the guard's lifetime, with
  /// the active segment sealed — the window in which Save serializes a
  /// consistent (main index, delta snapshot) pair. Searches keep running.
  class Pause {
   public:
    explicit Pause(std::unique_lock<std::mutex> lock)
        : lock_(std::move(lock)) {}

   private:
    std::unique_lock<std::mutex> lock_;
  };
  Pause PauseMutation();

  DeltaStore* delta_store() { return &delta_; }
  const DeltaStore* delta_store() const { return &delta_; }
  ObjectId next_id() const { return delta_.next_id(); }
  MutationStats stats() const;

 private:
  void WorkerLoop();
  /// One compaction pass: seal + snapshot + current main under the state
  /// lock, rebuild outside all locks, then swap + prune atomically.
  Status CompactOnce();

  EngineBackend* backend_;
  MutationOptions options_;
  DeltaStore delta_;

  mutable std::mutex state_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  bool compact_requested_ = false;
  uint64_t passes_started_ = 0;
  uint64_t passes_finished_ = 0;
  Status last_compact_status_;
  MutationStats stats_;
  std::thread worker_;
};

}  // namespace delta
}  // namespace genie
