#include "index/varint.h"

namespace genie {
namespace varint {

void Encode(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

Result<uint32_t> Decode(std::span<const uint8_t> buf, size_t* pos) {
  uint32_t value = 0;
  for (uint32_t shift = 0; shift < 35; shift += 7) {
    if (*pos >= buf.size()) {
      return Status::InvalidArgument("truncated varint");
    }
    const uint8_t byte = buf[(*pos)++];
    value |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 28 && (byte >> 4) != 0) {
        return Status::InvalidArgument("varint overflows uint32");
      }
      return value;
    }
  }
  return Status::InvalidArgument("varint too long");
}

Status EncodeDeltaAscending(std::span<const uint32_t> values,
                            std::vector<uint8_t>* out) {
  uint32_t prev = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0) {
      Encode(values[0], out);
    } else {
      if (values[i] < prev) {
        return Status::InvalidArgument(
            "delta coding requires ascending values");
      }
      Encode(values[i] - prev, out);
    }
    prev = values[i];
  }
  return Status::OK();
}

Status DecodeDeltaAscending(std::span<const uint8_t> buf, size_t* pos,
                            size_t count, std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(count);
  uint32_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    GENIE_ASSIGN_OR_RETURN(const uint32_t delta, Decode(buf, pos));
    const uint32_t value = i == 0 ? delta : prev + delta;
    if (i > 0 && value < prev) {
      return Status::InvalidArgument("delta decoding overflowed uint32");
    }
    out->push_back(value);
    prev = value;
  }
  return Status::OK();
}

}  // namespace varint
}  // namespace genie
