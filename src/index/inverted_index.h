#pragma once

/// \file inverted_index.h
/// The host-side inverted index of Section III-B: all postings lists stored
/// back-to-back in one List Array, plus a Position Map from keyword to its
/// (possibly several, after load-balance splitting — Fig. 4) sublists. The
/// Position Map always stays in CPU memory; only the List Array is shipped
/// to the device (DeviceIndex in match_engine.h).

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "index/types.h"

namespace genie {

/// Immutable CSR inverted index. Build through InvertedIndexBuilder or load
/// a serialized one with LoadIndex (index_io.h).
class InvertedIndex {
 public:
  /// Half-open range of positions in the List Array.
  struct ListRef {
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t length() const { return end - begin; }
  };

  uint32_t num_objects() const { return num_objects_; }
  uint32_t vocab_size() const {
    return static_cast<uint32_t>(keyword_first_list_.size() - 1);
  }
  uint32_t num_lists() const {
    return static_cast<uint32_t>(list_offsets_.size() - 1);
  }

  /// The whole List Array (concatenated postings).
  std::span<const ObjectId> postings() const { return postings_; }
  uint64_t postings_bytes() const { return postings_.size() * sizeof(ObjectId); }

  /// Position-map lookup: the (sub)lists of a keyword occupy the contiguous
  /// list-id range [first, first+count). Unknown keywords map to an empty
  /// range.
  std::pair<uint32_t, uint32_t> KeywordLists(Keyword kw) const {
    if (kw >= vocab_size()) return {0, 0};
    uint32_t first = keyword_first_list_[kw];
    return {first, keyword_first_list_[kw + 1] - first};
  }

  ListRef List(uint32_t list_id) const {
    GENIE_DCHECK(list_id < num_lists());
    return {list_offsets_[list_id], list_offsets_[list_id + 1]};
  }

  /// Total postings of a keyword across its sublists.
  uint32_t KeywordFrequency(Keyword kw) const {
    auto [first, count] = KeywordLists(kw);
    if (count == 0) return 0;
    return list_offsets_[first + count] - list_offsets_[first];
  }

  /// Longest single (sub)list — bounded by max_list_length when load
  /// balancing is on.
  uint32_t max_list_length() const { return max_list_length_; }

 private:
  // The index_io.h serialization entry points; the friend declarations are
  // the only declarations here (the public prototypes live in index_io.h).
  friend class InvertedIndexBuilder;
  friend Status SaveIndex(const InvertedIndex& index, const std::string& path);
  friend Status SaveIndexCompressed(const InvertedIndex& index,
                                    const std::string& path);
  friend Status SaveIndexToBuffer(const InvertedIndex& index, bool compressed,
                                  std::string* out);
  friend Result<InvertedIndex> LoadIndex(const std::string& path);
  friend Result<InvertedIndex> LoadIndexFromStream(std::FILE* f,
                                                   uint64_t end_offset,
                                                   const std::string& path);

  uint32_t num_objects_ = 0;
  uint32_t max_list_length_ = 0;
  std::vector<ObjectId> postings_;
  std::vector<uint32_t> list_offsets_;        // num_lists + 1
  std::vector<uint32_t> keyword_first_list_;  // vocab_size + 1
};

}  // namespace genie
